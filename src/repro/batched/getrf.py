"""irrLU-GPU — blocked LU with partial pivoting on an irregular batch.

The driver composes the building blocks exactly as Fig 1 / §IV describe,
written against the *largest* workload in the batch
(``max_i min(m_i, n_i)``); DCWI inside every kernel shrinks each matrix's
contribution as it finishes:

for each panel ``j`` of width ``ib``:

1. panel factorization — fused ``irrGETF2`` when the largest panel fits
   in shared memory, else the column-wise 4-kernel path (§IV-E);
2. ``irrLASWP`` — propagate the panel's row interchanges to the columns
   left and right of the panel (§IV-F);
3. ``irrTRSM`` — ``A[j:j+ib, j+ib:] ← L₁₁⁻¹ · A[j:j+ib, j+ib:]`` (§IV-D);
4. ``irrGEMM`` — trailing update
   ``A[j+ib:, j+ib:] −= A[j+ib:, j:j+ib] · A[j:j+ib, j+ib:]`` (§IV-C).

There are no auxiliary pointer/integer-arithmetic kernels anywhere: the
host only moves scalar offsets.

The result overwrites each matrix with its LAPACK-style packed factors
(unit-lower ``L`` below the diagonal, ``U`` on and above), with per-matrix
pivot vectors in a :class:`PanelPivots`.
"""

from __future__ import annotations

import numpy as np

from ..device.simulator import Device
from .abft import verified_getrf
from .engine import resolve_engine
from .gemm import irr_gemm
from .interface import IrrBatch
from .laswp import irr_laswp
from .panel import PanelPivots, _batch_abs_max, columnwise_getf2, \
    fused_getf2, panel_shared_bytes
from .trsm import irr_trsm

__all__ = ["irr_getrf", "lu_reconstruct", "lu_solve_factored",
           "DEFAULT_PANEL_WIDTH"]

#: the paper's design parameter: 16–32 columns per panel iteration.
DEFAULT_PANEL_WIDTH = 32


def irr_getrf(device: Device, batch: IrrBatch, *,
              nb: int | str = "auto",
              panel: str = "auto", laswp_variant: str = "rehearsed",
              concurrent_swaps: bool = False,
              pivot_tol: float = 0.0, static_pivot: bool = False,
              replace_scale: float | None = None,
              stream=None, engine="bucketed") -> PanelPivots:
    """Factor every matrix of an irregular batch as ``P·A = L·U``.

    Parameters
    ----------
    batch:
        Matrices of arbitrary, independent sizes (including 0×0 and 1×1).
        Overwritten with the packed LU factors.
    nb:
        Panel width (the paper's 16–32 column design parameter).
        ``"auto"`` picks the widest of 32/16/8 whose worst-case panel
        (``M_max × nb`` doubles) fits the device's per-block shared
        memory, so the fused ``irrGETF2`` kernel stays usable — the
        shared-memory-capacity dependence §IV-E describes.  Falls back
        to 32 (column-wise panels) when none fits.
    panel:
        ``"auto"`` switches from the fused shared-memory kernel to the
        column-wise path when the largest panel no longer fits (the
        architecture-dependent behaviour of §IV-E); ``"fused"`` or
        ``"columnwise"`` force a path (``"fused"`` raises when the panel
        cannot fit).
    laswp_variant:
        ``"rehearsed"`` (default, §IV-F) or ``"looped"``.
    pivot_tol:
        Breakdown threshold as a multiple of ``max|A_i|``: a pivot with
        ``|pivot| < max(tiny, pivot_tol·max|A_i|)`` breaks down.  The
        default ``0.0`` still flags exactly-zero and subnormal pivots
        (dividing by them overflows), matching LAPACK ``info`` semantics.
    static_pivot:
        Replace broken pivots by ``±replace_scale·max|A_i|`` (keeping the
        sign/phase) instead of reporting them in ``info`` — the
        STRUMPACK-style static-pivot recovery; the perturbation count
        and diagnostics land in the returned ``PanelPivots``
        (``n_replaced``, ``min_pivot``, ``growth``).
    replace_scale:
        Replacement magnitude for static pivoting (default
        ``sqrt(eps) ≈ 1.5e-8``, small enough for iterative refinement to
        absorb, large enough that ``1/pivot`` cannot overwhelm it).
    concurrent_swaps:
        The §VI extension: run the *left* row interchanges on a secondary
        stream, overlapped with the right swaps / TRSM / GEMM of the same
        iteration.  Correct because nothing on the main stream reads
        columns left of the panel again; the side stream waits (via an
        event) for each iteration's panel, whose pivots it consumes.
    engine:
        Host execution path: ``"bucketed"`` (default — plan-cached,
        shape-bucketed vectorized launch bodies), ``"naive"``/``None``
        (the per-matrix reference loops), or a shared
        :class:`~repro.batched.engine.BatchEngine`.  Both paths produce
        bitwise-identical factors, pivots and simulated costs; only host
        wall-clock differs.  One plan cache is created per call and
        reused by every panel iteration.

    Returns
    -------
    PanelPivots
        Per-matrix pivot vectors and LAPACK-style ``info`` codes.
    """
    if panel not in ("auto", "fused", "columnwise"):
        raise ValueError(f"unknown panel mode {panel!r}")
    if nb == "auto":
        nb = DEFAULT_PANEL_WIDTH
    if not isinstance(nb, int) or nb < 1:
        raise ValueError("panel width must be a positive integer or 'auto'")
    engine = resolve_engine(engine)

    kmax = batch.max_min_mn
    if kmax == 0 or len(batch) == 0:
        return PanelPivots(batch, pivot_tol=pivot_tol,
                           static_pivot=static_pivot,
                           replace_scale=replace_scale)

    m_req = batch.max_m
    n_req = batch.max_n
    side = device.new_stream() if concurrent_swaps else None

    def run() -> PanelPivots:
        pivots = PanelPivots(batch, pivot_tol=pivot_tol,
                             static_pivot=static_pivot,
                             replace_scale=replace_scale)

        for j in range(0, kmax, nb):
            ib = min(nb, kmax - j)

            # -- 1. panel ----------------------------------------------
            _factor_panel(device, batch, pivots, j, ib, panel=panel,
                          laswp_variant=laswp_variant, stream=stream,
                          engine=engine)

            # -- 2. row interchanges outside the panel ------------------
            if j > 0:
                if side is not None:
                    after_panel = device.record_event(
                        stream=stream if stream is not None else 0)
                    irr_laswp(device, batch, pivots, j, ib, "left",
                              variant=laswp_variant, stream=side,
                              wait_events=[after_panel], engine=engine)
                else:
                    irr_laswp(device, batch, pivots, j, ib, "left",
                              variant=laswp_variant, stream=stream,
                              engine=engine)
            if n_req > j + ib:
                irr_laswp(device, batch, pivots, j, ib, "right",
                          variant=laswp_variant, stream=stream,
                          engine=engine)

                # -- 3. update the upper factor (unit-lower solve) -------
                irr_trsm(device, "L", "L", "N", "U", ib, n_req - j - ib,
                         1.0, batch, (j, j), batch, (j, j + ib),
                         stream=stream, engine=engine)

                # -- 4. trailing-matrix rank-ib update -------------------
                if m_req > j + ib:
                    irr_gemm(device, "N", "N", m_req - j - ib,
                             n_req - j - ib, ib, -1.0, batch, (j + ib, j),
                             batch, (j, j + ib), 1.0,
                             batch, (j + ib, j + ib), stream=stream,
                             engine=engine)

        # Element growth factor max|LU| / max|A|, a stability diagnostic
        # surfaced with the pivots.  Computed on the host after the last
        # launch (engine-independent, so both engines report identical
        # diagnostics); the guarded divide keeps empty matrices at 1.0.
        ctrl = pivots.ctrl
        post = _batch_abs_max(batch)
        np.divide(post, ctrl.anorm, out=ctrl.growth, where=ctrl.anorm > 0.0)
        return pivots

    if not device.verify_kernels:
        return run()
    # ABFT: verify P^T.L.(U.w) = A0.w over the final packed factors and
    # re-factorize from the input snapshot on mismatch — the coarse
    # re-execution rung that covers the panel kernels, which have no
    # per-launch checksum of their own.
    return verified_getrf(device, batch, run)


#: sub-panel width below which the column-wise path is used when even the
#: recursion cannot make the fused kernel fit.
MIN_FUSED_WIDTH = 8


def _factor_panel(device: Device, batch: IrrBatch, pivots: PanelPivots,
                  j: int, ib: int, *, panel: str, laswp_variant: str,
                  stream, engine=None) -> None:
    """Factor the panel at global column ``j``, width ``ib``.

    ``panel="auto"`` is the shared-memory-adaptive path of §IV-E, extended
    with the *recursive* splitting the expanded interface makes possible
    (§IV-A: "the new interface ... also enables recursive algorithms"):
    when the largest panel does not fit in shared memory, the panel is
    split in halves — factor the left half, propagate its pivots to the
    right half (windowed irrLASWP), solve and update the right half
    (irrTRSM + irrGEMM restricted to the panel), factor it, and propagate
    its pivots back to the left half.  Only scalar offsets move; no
    pointer-arithmetic kernels run.
    """
    if panel == "columnwise":
        columnwise_getf2(device, batch, pivots, j, ib, stream=stream)
        return
    fits = panel_shared_bytes(batch.max_m, j, ib, batch.itemsize) <= \
        device.spec.max_shared_per_block
    if fits or panel == "fused":
        fused_getf2(device, batch, pivots, j, ib, stream=stream,
                    engine=engine)
        return
    if ib <= MIN_FUSED_WIDTH:
        columnwise_getf2(device, batch, pivots, j, ib, stream=stream)
        return

    ib1 = ib // 2
    ib2 = ib - ib1
    m_req = batch.max_m
    _factor_panel(device, batch, pivots, j, ib1, panel=panel,
                  laswp_variant=laswp_variant, stream=stream, engine=engine)
    # first-half pivots -> right half of this panel only
    irr_laswp(device, batch, pivots, j, ib1, (j + ib1, j + ib),
              variant=laswp_variant, stream=stream, engine=engine)
    irr_trsm(device, "L", "L", "N", "U", ib1, ib2, 1.0,
             batch, (j, j), batch, (j, j + ib1), stream=stream,
             engine=engine)
    if m_req > j + ib1:
        irr_gemm(device, "N", "N", m_req - j - ib1, ib2, ib1, -1.0,
                 batch, (j + ib1, j), batch, (j, j + ib1), 1.0,
                 batch, (j + ib1, j + ib1), stream=stream, engine=engine)
    _factor_panel(device, batch, pivots, j + ib1, ib2, panel=panel,
                  laswp_variant=laswp_variant, stream=stream, engine=engine)
    # second-half pivots -> left half of this panel
    irr_laswp(device, batch, pivots, j + ib1, ib2, (j, j + ib1),
              variant=laswp_variant, stream=stream, engine=engine)


def lu_reconstruct(factored: np.ndarray, ipiv: np.ndarray) -> np.ndarray:
    """Rebuild ``A`` from packed LU factors and pivots (test utility).

    Applies the row interchanges in reverse to ``L·U``, undoing
    ``P·A = L·U``.
    """
    m, n = factored.shape
    k = min(m, n)
    lower = np.tril(factored[:, :k], -1) + np.eye(m, k, dtype=factored.dtype)
    upper = np.triu(factored[:k, :])
    a = lower @ upper
    for r in range(k - 1, -1, -1):
        p = int(ipiv[r])
        if p != r:
            a[[r, p], :] = a[[p, r], :]
    return a


def lu_solve_factored(factored: np.ndarray, ipiv: np.ndarray,
                      b: np.ndarray) -> np.ndarray:
    """Solve ``A·x = b`` from packed square LU factors (test utility)."""
    import scipy.linalg as sla

    n = factored.shape[0]
    x = np.array(b, dtype=np.result_type(factored.dtype, np.asarray(b).dtype),
                 copy=True)
    if x.ndim == 1:
        x = x[:, None]
    for r in range(n):
        p = int(ipiv[r])
        if p != r:
            x[[r, p], :] = x[[p, r], :]
    x = sla.solve_triangular(factored, x, lower=True, unit_diagonal=True,
                             check_finite=False)
    x = sla.solve_triangular(factored, x, lower=False, check_finite=False)
    return x if np.ndim(b) == 2 else x[:, 0]
