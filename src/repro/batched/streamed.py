"""The concurrent-streams baseline: per-matrix solver calls (§V-A).

"The only resort would be to use concurrent kernel launches using parallel
streams, which often performs very poorly" — this module is that resort.
Each matrix of the irregular batch gets its own :func:`vendor_getrf` call,
issued round-robin into ``n_streams`` simulated streams.  Every per-matrix
call is a sequence of kernel launches, all serialized through the host's
per-launch overhead, and each kernel occupies only the SMs one matrix can
fill — the two effects that flatten this baseline in Fig 10 while leaving
it competitive for a few large matrices in Fig 11.
"""

from __future__ import annotations

import numpy as np

from ..device.simulator import Device
from .interface import IrrBatch
from .vendor import vendor_getrf

__all__ = ["streamed_getrf"]


def streamed_getrf(device: Device, batch: IrrBatch, *,
                   n_streams: int = 16) -> list[np.ndarray]:
    """Factor every matrix with a per-matrix vendor solver call.

    Matrices are dispatched round-robin over ``n_streams`` streams
    (matching the paper's setup of 16, empirically tuned per point in
    Fig 11).  Returns the per-matrix pivot vectors; factors overwrite the
    batch in place.
    """
    if n_streams < 1:
        raise ValueError("need at least one stream")
    pivots: list[np.ndarray] = []
    for i in range(len(batch)):
        m, n = batch.local_dims(i)
        sid = 1 + (i % n_streams)  # keep the default stream free
        if min(m, n) == 0:
            pivots.append(np.empty(0, dtype=np.int64))
            continue
        view = batch.arrays[i][:m, :n]
        pivots.append(vendor_getrf(device, view, stream=sid))
    return pivots
