"""Algorithm-based fault tolerance (ABFT) for the irregular batched kernels.

A kernel launch that *completes* but writes wrong bytes — silent data
corruption, the ``corrupt`` fault kind of :mod:`repro.device.faults` —
is invisible to the launch/transfer error machinery.  This module adds
the classic checksum defense: every verified launch group carries
host-side row-checksum vectors (``w = 1``), computed from the operands
at staging, and the algebraic identity each kernel must preserve is
re-checked on the outputs after the launch:

========================  ============================================
``irrGEMM``               ``C·w = α·op(A)·(op(B)·w) + β·(C₀·w)``
``irrTRSM`` (base)        ``op(T)·(X·w) = α·(B₀·w)`` (side ``R``
                          mirrored)
``irrGETRF`` (driver)     ``Pᵀ·L·(U·w) = A₀·w`` over the final packed
                          factors
========================  ============================================

Checks are *O(n²)* per matrix against the kernels' *O(n³)* work, the
standard ABFT cost profile.  Tolerances follow the elementwise
rounding-error bound of the checked product (``O(k·eps)`` times an
absolute-value magnitude checksum computed alongside each value
checksum) times a slack factor; the injected corruption magnitude
(:data:`~repro.device.faults.CORRUPT_MAGNITUDE` × the buffer scale) is
many orders above it, so detection never misses, while fault-free
launches never trip.

On a mismatch the launch group is **re-executed** from snapshots of its
in-place operands — a bounded ``kernel-reexec`` rung recorded in the
device :class:`~repro.recovery.RecoveryLog` — and re-verified; a
mismatch that survives :data:`ABFT_MAX_REEXEC` re-executions is a
persistent fault surfaced as a typed
:class:`~repro.errors.CorruptionDetected` carrying the launch site and
the first offending batch index.  Because re-execution restores the
exact input bytes and the kernels are deterministic, a repaired run is
bitwise-identical to a fault-free run.

Everything here is gated on ``device.verify_kernels`` (enabled
automatically by ``fault_scope`` when the plan carries ``corrupt``
rules): with verification off, no snapshot, checksum or launch changes
happen and every existing path stays byte-for-byte identical.

Members whose factorization broke down (``info != 0``) or took
static-pivot replacements (``n_replaced > 0``) perturb the LU identity
by design; broken members are excluded (they surface through the
breakdown report) and perturbed members are checked against a loose
gross-corruption threshold instead of the rounding bound.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost
from ..errors import CorruptionDetected

__all__ = ["ABFT_MAX_REEXEC", "verified_launch", "verified_getrf",
           "gemm_check", "trsm_check", "getrf_check"]

#: bounded re-execution budget: a checksum mismatch may trigger at most
#: this many re-executions of its launch group before the corruption is
#: declared persistent and raised as CorruptionDetected.
ABFT_MAX_REEXEC = 2

#: relaxation over the elementwise rounding-error bound; large enough
#: that legitimate O(k·eps) accumulation differences never trip, small
#: enough that a CORRUPT_MAGNITUDE-scaled corruption always does.
_SLACK = 64.0

#: loose absolute-fraction threshold for members whose identity is
#: legitimately perturbed by static-pivot replacement.
_LOOSE_FRAC = 1e-2


def _finfo(dtype):
    return np.finfo(np.dtype(dtype))


def _row_sum(a: np.ndarray) -> np.ndarray:
    """Row checksum ``a @ w`` with ``w = 1`` (empty-safe)."""
    if a.size == 0:
        return np.zeros(a.shape[0], dtype=a.dtype)
    return a.sum(axis=1)


def _abs_row_sum(a: np.ndarray) -> np.ndarray:
    """Magnitude checksum ``|a| @ w`` (always real float64)."""
    if a.size == 0:
        return np.zeros(a.shape[0], dtype=np.float64)
    return np.abs(a).sum(axis=1, dtype=np.float64)


def _mismatch(got: np.ndarray, ref: np.ndarray,
              tol: np.ndarray | float) -> bool:
    """True when any checksum element falls outside tolerance.

    Written so non-finite garbage (NaN/Inf written by a corruption, or
    produced downstream of one) always counts as a mismatch.
    """
    err = np.abs(got - ref)
    return bool(np.any(~(err <= tol)))


# ----------------------------------------------------------------------
# per-kernel checks
# ----------------------------------------------------------------------
def _apply_op(a: np.ndarray, trans: str) -> np.ndarray:
    if trans == "N":
        return a
    return a.conj().T if trans == "C" else a.T


class gemm_check:
    """Checksum invariant of one irrGEMM launch.

    Built *before* the launch (snapshots ``C₀`` of every read-modify-
    write block); :meth:`first_bad` verifies the post-launch outputs;
    :meth:`restore` rewinds the in-place operands so the launch can
    re-execute bitwise.
    """

    def __init__(self, transa, transb, alpha, beta, A, a_off, B, b_off,
                 C, c_off, targets):
        self.transa, self.transb = transa, transb
        self.alpha, self.beta = alpha, beta
        self.A, self.a_off = A, a_off
        self.B, self.b_off = B, b_off
        self.C, self.c_off = C, c_off
        self.targets = targets          # [(i, mi, ni, ki)]
        # beta != 0 makes the update read-modify-write: snapshot C0 both
        # for the reference checksum and for bitwise re-execution.
        self.c0 = None
        if beta != 0.0:
            self.c0 = [C.sub(i, c_off[0], c_off[1], mi, ni).copy()
                       for (i, mi, ni, _ki) in self.targets]

    def outputs(self) -> list[np.ndarray]:
        return [self.C.sub(i, self.c_off[0], self.c_off[1], mi, ni)
                for (i, mi, ni, _ki) in self.targets]

    def restore(self) -> int:
        if self.c0 is None:
            return 0
        nbytes = 0
        for (i, mi, ni, _ki), c0 in zip(self.targets, self.c0):
            self.C.sub(i, self.c_off[0], self.c_off[1], mi, ni)[...] = c0
            nbytes += c0.nbytes
        return nbytes

    def first_bad(self) -> int | None:
        eps = _finfo(self.C.dtype).eps
        tiny = _finfo(self.C.dtype).tiny
        for t, (i, mi, ni, ki) in enumerate(self.targets):
            c = self.C.sub(i, self.c_off[0], self.c_off[1], mi, ni)
            got = _row_sum(c)
            if self.beta != 0.0:
                c0 = self.c0[t]
                ref = self.beta * _row_sum(c0)
                mag = abs(self.beta) * _abs_row_sum(c0)
            else:
                ref = np.zeros(mi, dtype=c.dtype)
                mag = np.zeros(mi, dtype=np.float64)
            if ki > 0:
                if self.transa == "N":
                    a_sub = self.A.sub(i, self.a_off[0], self.a_off[1],
                                       mi, ki)
                else:
                    a_sub = self.A.sub(i, self.a_off[0], self.a_off[1],
                                       ki, mi)
                if self.transb == "N":
                    b_sub = self.B.sub(i, self.b_off[0], self.b_off[1],
                                       ki, ni)
                else:
                    b_sub = self.B.sub(i, self.b_off[0], self.b_off[1],
                                       ni, ki)
                opa = _apply_op(a_sub, self.transa)
                opb = _apply_op(b_sub, self.transb)
                ref = ref + self.alpha * (opa @ _row_sum(opb))
                mag = mag + abs(self.alpha) * (
                    np.abs(opa) @ _abs_row_sum(opb))
            tol = _SLACK * eps * (ki + 8) * (mag + _abs_row_sum(c)) \
                + _SLACK * tiny
            if _mismatch(got, ref, tol):
                return i
        return None


def _tri_operator(t: np.ndarray, uplo: str, trans: str, diag: str,
                  absolute: bool = False) -> np.ndarray:
    """The dense operator op(T) a TRSM base solve inverted."""
    tt = np.tril(t) if uplo == "L" else np.triu(t)
    if diag == "U":
        np.fill_diagonal(tt, 1.0)
    if trans == "T":
        tt = tt.T
    elif trans == "C":
        tt = tt.conj().T
    return np.abs(tt) if absolute else tt


class trsm_check:
    """Checksum invariant of one irrTRSM base-case launch.

    The solve is in place in ``B``; ``B₀`` is snapshotted at
    construction for both the reference checksum and bitwise
    re-execution.
    """

    def __init__(self, side, uplo, trans, diag, alpha, T, t_off, B, b_off,
                 targets):
        self.side, self.uplo = side, uplo
        self.trans, self.diag = trans, diag
        self.alpha = alpha
        self.T, self.t_off = T, t_off
        self.B, self.b_off = B, b_off
        self.targets = targets          # [(i, mi, ni, order)]
        self.b0 = [B.sub(i, b_off[0], b_off[1], mi, ni).copy()
                   for (i, mi, ni, _o) in targets]

    def outputs(self) -> list[np.ndarray]:
        return [self.B.sub(i, self.b_off[0], self.b_off[1], mi, ni)
                for (i, mi, ni, _o) in self.targets]

    def restore(self) -> int:
        nbytes = 0
        for (i, mi, ni, _o), b0 in zip(self.targets, self.b0):
            self.B.sub(i, self.b_off[0], self.b_off[1], mi, ni)[...] = b0
            nbytes += b0.nbytes
        return nbytes

    def first_bad(self) -> int | None:
        eps = _finfo(self.B.dtype).eps
        tiny = _finfo(self.B.dtype).tiny
        for t, (i, mi, ni, order) in enumerate(self.targets):
            x = self.B.sub(i, self.b_off[0], self.b_off[1], mi, ni)
            t_sub = self.T.sub(i, self.t_off[0], self.t_off[1],
                               order, order)
            opt = _tri_operator(t_sub, self.uplo, self.trans, self.diag)
            opa = _tri_operator(t_sub, self.uplo, self.trans, self.diag,
                                absolute=True)
            if self.side == "L":
                got = opt @ _row_sum(x)
                mag = opa @ _abs_row_sum(x)
            else:
                got = x @ opt.sum(axis=1) if x.size else \
                    np.zeros(mi, dtype=x.dtype)
                mag = np.abs(x) @ opa.sum(axis=1) if x.size else \
                    np.zeros(mi, dtype=np.float64)
            ref = self.alpha * _row_sum(self.b0[t])
            mag = mag + abs(self.alpha) * _abs_row_sum(self.b0[t])
            tol = _SLACK * eps * (order + 8) * mag + _SLACK * tiny
            if _mismatch(got, ref, tol):
                return i
        return None


def _lu_checksum(fac: np.ndarray, ipiv: np.ndarray,
                 absolute: bool = False) -> np.ndarray:
    """``Pᵀ·L·(U·w)`` over packed factors (``Pᵀ·|L|·(|U|·w)`` when
    ``absolute`` — a magnitude bound on the value checksum)."""
    m, n = fac.shape
    k = min(m, n)
    f = np.abs(fac) if absolute else fac
    uw = _row_sum(np.triu(f[:k, :]))                    # U·w, length k
    y = np.zeros(m, dtype=f.dtype)
    y[:k] = uw                                          # unit diagonal of L
    if k:
        y += np.tril(f[:, :k], -1) @ uw
    for r in range(k - 1, -1, -1):                      # undo P·A = L·U
        p = int(ipiv[r])
        if p != r:
            y[[r, p]] = y[[p, r]]
    return y


class getrf_check:
    """Checksum invariant of one irrGETRF driver call.

    Snapshots every input matrix (and its checksum ``A₀·w``) before the
    factorization; verifies ``Pᵀ·L·(U·w) = A₀·w`` over the final packed
    factors.  Broken members (``info != 0``) are excluded — they
    surface through the breakdown report, not as corruption; members
    with static-pivot replacements are checked against the loose
    gross-corruption threshold (their identity is perturbed by design).
    """

    def __init__(self, batch):
        self.batch = batch
        self.snap = [batch.matrix(i).copy() for i in range(len(batch))]
        self.r0 = [_row_sum(s) for s in self.snap]
        self.r0a = [_abs_row_sum(s) for s in self.snap]

    def restore(self) -> int:
        nbytes = 0
        for i, s in enumerate(self.snap):
            self.batch.matrix(i)[...] = s
            nbytes += s.nbytes
        return nbytes

    def first_bad(self, pivots) -> int | None:
        eps = _finfo(self.batch.dtype).eps
        tiny = _finfo(self.batch.dtype).tiny
        for i in range(len(self.batch)):
            m, n = self.batch.local_dims(i)
            k = min(m, n)
            if k == 0 or pivots.info[i] != 0:
                continue
            fac = self.batch.matrix(i)
            got = _lu_checksum(fac, pivots.ipiv[i])
            mag = _lu_checksum(fac, pivots.ipiv[i], absolute=True)
            tol = _SLACK * eps * (k + 8) * (mag + self.r0a[i]) \
                + _SLACK * tiny
            if pivots.n_replaced[i] > 0:
                tol = tol + _LOOSE_FRAC * (mag + self.r0a[i] + 1.0)
            if _mismatch(got, self.r0[i], tol):
                return i
        return None


# ----------------------------------------------------------------------
# bounded re-execution drivers
# ----------------------------------------------------------------------
def verified_launch(device, name, kernel, check, *, stream=None
                    ) -> KernelCost:
    """Launch ``kernel``, verify ``check``, re-execute on mismatch.

    ``check`` supplies the launch's registered outputs, the post-launch
    verification (:meth:`first_bad`) and the operand rewind
    (:meth:`restore`).  Each re-execution restores the in-place
    operands, records a ``kernel-reexec`` event and relaunches the same
    kernel closure — paying launch overhead and kernel time again, like
    a real re-execution; a mismatch surviving the budget raises
    :class:`~repro.errors.CorruptionDetected`.
    """
    for attempt in range(ABFT_MAX_REEXEC + 1):
        cost = device.launch(name, kernel, stream=stream,
                             outputs=check.outputs)
        bad = check.first_bad()
        if bad is None:
            return cost
        if attempt >= ABFT_MAX_REEXEC:
            raise CorruptionDetected(
                name, bad, f"checksum mismatch survived "
                f"{ABFT_MAX_REEXEC} re-execution(s)")
        nbytes = check.restore()
        device.recovery_log.record(
            "kernel-reexec", site=name, attempt=attempt + 1,
            detail=f"checksum mismatch at batch index {bad}; "
                   f"restored {nbytes}B and re-executed")


def verified_getrf(device, batch, run, *, name: str = "irrgetrf"):
    """Run a whole GETRF driver call under factor-checksum verification.

    ``run`` executes the factorization (all its panel/TRSM/GEMM
    launches) and returns fresh ``PanelPivots``.  On a factor-checksum
    mismatch the input batch is restored from the staging snapshot via
    a device-side copy launch and the entire driver re-runs with fresh
    pivot state — the coarse re-execution rung for corruption inside
    launches that have no per-launch check (the fused panel kernel).
    """
    check = getrf_check(batch)
    for attempt in range(ABFT_MAX_REEXEC + 1):
        pivots = run()
        bad = check.first_bad(pivots)
        if bad is None:
            return pivots
        if attempt >= ABFT_MAX_REEXEC:
            raise CorruptionDetected(
                name, bad, f"factor checksum mismatch survived "
                f"{ABFT_MAX_REEXEC} re-execution(s)")
        device.recovery_log.record(
            "kernel-reexec", site=name, attempt=attempt + 1,
            detail=f"factor checksum mismatch at batch index {bad}; "
                   f"restored inputs and re-factorized")

        def restore_kernel() -> KernelCost:
            nbytes = float(check.restore())
            return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                              blocks=max(len(check.snap), 1),
                              kernel_class="swap")

        device.launch(f"{name}:abft-restore", restore_kernel)
