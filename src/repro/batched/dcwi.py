"""Dynamic Compute-Workload Inference (DCWI) — §IV-B of the paper.

Algorithms over irregular batches are written against the *required*
dimensions (scalars sized to the largest matrix in the batch).  Each
kernel then infers, per matrix, the *actual* workload from three pieces of
information carried by the expanded interface:

* the required dimensions (``m``, ``n``, ``k``, …),
* the local dimensions (``m_vec[i]``, ``n_vec[i]`` — per-matrix, never
  mutated during the algorithm),
* the scalar pointer offsets (``Ai``, ``Aj`` — applied uniformly to every
  matrix).

The inferred workload is classified as FULL (the matrix still needs the
whole required operation), PARTIAL (a smaller one), or NONE (this matrix
was already fully processed — its threads do no work).  Inference is
kernel-specific: for ``C = op(A)·op(B)`` the offsets of ``A`` must be
compared against ``(m, k)`` for ``op = N`` but against ``(k, m)`` for
``op = T`` — getting this wrong is exactly the class of bug the paper
warns produces memory faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Workload", "infer_extent", "infer_matrix", "infer_gemm",
           "infer_trsm", "GemmWork", "op_shape",
           "WORKLOAD_NONE", "WORKLOAD_PARTIAL", "WORKLOAD_FULL",
           "workload_code", "infer_matrix_batch", "infer_gemm_batch",
           "infer_trsm_batch", "op_shape_batch"]


class Workload(Enum):
    """Classification of a matrix's remaining work at one algorithm step."""

    NONE = "none"
    PARTIAL = "partial"
    FULL = "full"


def infer_extent(required: int, local: int, offset: int) -> int:
    """Actual extent along one dimension.

    ``required`` is the global (largest-matrix) extent, ``local`` the
    matrix's own dimension, ``offset`` how far into the matrix the
    submatrix starts.  Negative results clamp to zero (matrix exhausted).
    """
    return max(0, min(int(required), int(local) - int(offset)))


def infer_matrix(m: int, n: int, local_m: int, local_n: int,
                 ai: int, aj: int) -> tuple[int, int, Workload]:
    """Workload of a plain ``m × n`` submatrix operation at offset (ai, aj)."""
    mi = infer_extent(m, local_m, ai)
    ni = infer_extent(n, local_n, aj)
    if mi == 0 or ni == 0:
        return 0, 0, Workload.NONE
    cls = Workload.FULL if (mi == m and ni == n) else Workload.PARTIAL
    return mi, ni, cls


def op_shape(trans: str, local_m: int, local_n: int,
             oi: int, oj: int) -> tuple[int, int]:
    """Available (rows, cols) of ``op(X)`` for a matrix with the given
    local dims and offsets.

    For ``trans == 'N'`` the available rows come from the row dimension;
    for ``trans == 'T'``/``'C'`` the roles swap — the semantic subtlety
    §IV-B calls out.
    """
    avail_rows = max(0, int(local_m) - int(oi))
    avail_cols = max(0, int(local_n) - int(oj))
    if trans == "N":
        return avail_rows, avail_cols
    if trans in ("T", "C"):
        return avail_cols, avail_rows
    raise ValueError(f"invalid trans {trans!r}")


@dataclass(frozen=True)
class GemmWork:
    """Per-matrix inferred GEMM workload.

    ``cls`` is the classification against the *required* dimensions and
    is assigned by :func:`infer_gemm`; it always agrees with the
    classification that function returns (a ``GemmWork`` covering the
    whole required operation is FULL, not PARTIAL).
    """

    m: int
    n: int
    k: int
    cls: Workload

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


def infer_gemm(transa: str, transb: str, m: int, n: int, k: int,
               a_local: tuple[int, int], a_off: tuple[int, int],
               b_local: tuple[int, int], b_off: tuple[int, int],
               c_local: tuple[int, int], c_off: tuple[int, int],
               ) -> tuple[GemmWork, Workload]:
    """Infer the actual ``C ← α·op(A)·op(B) + β·C`` workload for one matrix.

    Returns the inferred dims plus the classification.  ``k == 0`` with
    nonzero ``m, n`` still requires the β-scaling of ``C`` (a PARTIAL
    workload), matching BLAS semantics.
    """
    a_rows, a_cols = op_shape(transa, *a_local, *a_off)
    b_rows, b_cols = op_shape(transb, *b_local, *b_off)
    c_rows = max(0, c_local[0] - c_off[0])
    c_cols = max(0, c_local[1] - c_off[1])

    mi = max(0, min(m, c_rows, a_rows))
    ni = max(0, min(n, c_cols, b_cols))
    ki = max(0, min(k, a_cols, b_rows))

    if mi == 0 or ni == 0:
        cls = Workload.NONE
    elif (mi, ni, ki) == (m, n, k):
        cls = Workload.FULL
    else:
        cls = Workload.PARTIAL
    return GemmWork(mi, ni, ki, cls), cls


def infer_trsm(side: str, m: int, n: int,
               t_local: tuple[int, int], t_off: tuple[int, int],
               b_local: tuple[int, int], b_off: tuple[int, int],
               ) -> tuple[int, int, Workload]:
    """Infer the actual triangular-solve workload for one matrix.

    ``side == 'L'`` solves ``op(T)·X = α·B`` with ``T`` of order ``m``;
    ``side == 'R'`` solves ``X·op(T) = α·B`` with ``T`` of order ``n``.
    The triangular order is limited by *both* dimensions of the stored
    ``T`` submatrix (it must contain the full order×order triangle).
    """
    t_rows = max(0, t_local[0] - t_off[0])
    t_cols = max(0, t_local[1] - t_off[1])
    t_order = min(t_rows, t_cols)
    b_rows = max(0, b_local[0] - b_off[0])
    b_cols = max(0, b_local[1] - b_off[1])

    if side == "L":
        mi = max(0, min(m, t_order, b_rows))
        ni = max(0, min(n, b_cols))
    elif side == "R":
        mi = max(0, min(m, b_rows))
        ni = max(0, min(n, t_order, b_cols))
    else:
        raise ValueError(f"invalid side {side!r}")

    if mi == 0 or ni == 0:
        return mi, ni, Workload.NONE
    cls = Workload.FULL if (mi, ni) == (m, n) else Workload.PARTIAL
    return mi, ni, cls


# ----------------------------------------------------------------------
# vectorized (whole-batch) inference
# ----------------------------------------------------------------------
#
# The scalar functions above are the reference semantics; the ``*_batch``
# versions below compute the same inference for every matrix of a batch
# with NumPy int64 arithmetic — no per-matrix Python calls.  They are the
# substrate of the plan cache in :mod:`repro.batched.engine`: workload
# inference is deterministic in (required dims, local dims, offsets,
# flags), so a batch's inference is computed once per signature and
# reused.  Classifications are returned as int8 codes so whole-batch
# masks stay cheap.

#: int8 classification codes (ordered so ``code > WORKLOAD_NONE`` means
#: "has work").
WORKLOAD_NONE = 0
WORKLOAD_PARTIAL = 1
WORKLOAD_FULL = 2

_CODE_OF = {Workload.NONE: WORKLOAD_NONE,
            Workload.PARTIAL: WORKLOAD_PARTIAL,
            Workload.FULL: WORKLOAD_FULL}


def workload_code(cls: Workload) -> int:
    """The int8 code of a scalar :class:`Workload` classification."""
    return _CODE_OF[cls]


def _as_i64(v) -> np.ndarray:
    return np.asarray(v, dtype=np.int64)


def op_shape_batch(trans: str, m_vec, n_vec, oi: int, oj: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`op_shape`: available (rows, cols) of ``op(X)``
    for every matrix of a batch with local dims ``(m_vec, n_vec)``."""
    avail_rows = np.maximum(_as_i64(m_vec) - int(oi), 0)
    avail_cols = np.maximum(_as_i64(n_vec) - int(oj), 0)
    if trans == "N":
        return avail_rows, avail_cols
    if trans in ("T", "C"):
        return avail_cols, avail_rows
    raise ValueError(f"invalid trans {trans!r}")


def infer_matrix_batch(m: int, n: int, m_vec, n_vec, ai: int, aj: int
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`infer_matrix` over a batch.

    Returns ``(mi_vec, ni_vec, cls_vec)`` where ``cls_vec`` holds the
    int8 ``WORKLOAD_*`` codes.
    """
    mi = np.clip(_as_i64(m_vec) - int(ai), 0, int(m))
    ni = np.clip(_as_i64(n_vec) - int(aj), 0, int(n))
    cls = np.where((mi == 0) | (ni == 0), WORKLOAD_NONE,
                   np.where((mi == m) & (ni == n), WORKLOAD_FULL,
                            WORKLOAD_PARTIAL)).astype(np.int8)
    mi = np.where(cls == WORKLOAD_NONE, 0, mi)
    ni = np.where(cls == WORKLOAD_NONE, 0, ni)
    return mi, ni, cls


def infer_gemm_batch(transa: str, transb: str, m: int, n: int, k: int,
                     a_mvec, a_nvec, a_off: tuple[int, int],
                     b_mvec, b_nvec, b_off: tuple[int, int],
                     c_mvec, c_nvec, c_off: tuple[int, int],
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Vectorized :func:`infer_gemm` over a batch.

    Returns ``(mi_vec, ni_vec, ki_vec, cls_vec)``, matching the scalar
    function element-for-element (``cls_vec`` as int8 codes).
    """
    a_rows, a_cols = op_shape_batch(transa, a_mvec, a_nvec, *a_off)
    b_rows, b_cols = op_shape_batch(transb, b_mvec, b_nvec, *b_off)
    c_rows = np.maximum(_as_i64(c_mvec) - int(c_off[0]), 0)
    c_cols = np.maximum(_as_i64(c_nvec) - int(c_off[1]), 0)

    mi = np.maximum(np.minimum(np.minimum(int(m), c_rows), a_rows), 0)
    ni = np.maximum(np.minimum(np.minimum(int(n), c_cols), b_cols), 0)
    ki = np.maximum(np.minimum(np.minimum(int(k), a_cols), b_rows), 0)

    cls = np.where((mi == 0) | (ni == 0), WORKLOAD_NONE,
                   np.where((mi == m) & (ni == n) & (ki == k),
                            WORKLOAD_FULL, WORKLOAD_PARTIAL)).astype(np.int8)
    return mi, ni, ki, cls


def infer_trsm_batch(side: str, m: int, n: int,
                     t_mvec, t_nvec, t_off: tuple[int, int],
                     b_mvec, b_nvec, b_off: tuple[int, int],
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`infer_trsm` over a batch.

    Returns ``(mi_vec, ni_vec, cls_vec)`` (``cls_vec`` as int8 codes).
    """
    t_rows = np.maximum(_as_i64(t_mvec) - int(t_off[0]), 0)
    t_cols = np.maximum(_as_i64(t_nvec) - int(t_off[1]), 0)
    t_order = np.minimum(t_rows, t_cols)
    b_rows = np.maximum(_as_i64(b_mvec) - int(b_off[0]), 0)
    b_cols = np.maximum(_as_i64(b_nvec) - int(b_off[1]), 0)

    if side == "L":
        mi = np.maximum(np.minimum(np.minimum(int(m), t_order), b_rows), 0)
        ni = np.maximum(np.minimum(int(n), b_cols), 0)
    elif side == "R":
        mi = np.maximum(np.minimum(int(m), b_rows), 0)
        ni = np.maximum(np.minimum(np.minimum(int(n), t_order), b_cols), 0)
    else:
        raise ValueError(f"invalid side {side!r}")

    cls = np.where((mi == 0) | (ni == 0), WORKLOAD_NONE,
                   np.where((mi == m) & (ni == n), WORKLOAD_FULL,
                            WORKLOAD_PARTIAL)).astype(np.int8)
    return mi, ni, cls
