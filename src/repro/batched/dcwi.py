"""Dynamic Compute-Workload Inference (DCWI) — §IV-B of the paper.

Algorithms over irregular batches are written against the *required*
dimensions (scalars sized to the largest matrix in the batch).  Each
kernel then infers, per matrix, the *actual* workload from three pieces of
information carried by the expanded interface:

* the required dimensions (``m``, ``n``, ``k``, …),
* the local dimensions (``m_vec[i]``, ``n_vec[i]`` — per-matrix, never
  mutated during the algorithm),
* the scalar pointer offsets (``Ai``, ``Aj`` — applied uniformly to every
  matrix).

The inferred workload is classified as FULL (the matrix still needs the
whole required operation), PARTIAL (a smaller one), or NONE (this matrix
was already fully processed — its threads do no work).  Inference is
kernel-specific: for ``C = op(A)·op(B)`` the offsets of ``A`` must be
compared against ``(m, k)`` for ``op = N`` but against ``(k, m)`` for
``op = T`` — getting this wrong is exactly the class of bug the paper
warns produces memory faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Workload", "infer_extent", "infer_matrix", "infer_gemm",
           "infer_trsm", "GemmWork", "op_shape"]


class Workload(Enum):
    """Classification of a matrix's remaining work at one algorithm step."""

    NONE = "none"
    PARTIAL = "partial"
    FULL = "full"


def infer_extent(required: int, local: int, offset: int) -> int:
    """Actual extent along one dimension.

    ``required`` is the global (largest-matrix) extent, ``local`` the
    matrix's own dimension, ``offset`` how far into the matrix the
    submatrix starts.  Negative results clamp to zero (matrix exhausted).
    """
    return max(0, min(int(required), int(local) - int(offset)))


def infer_matrix(m: int, n: int, local_m: int, local_n: int,
                 ai: int, aj: int) -> tuple[int, int, Workload]:
    """Workload of a plain ``m × n`` submatrix operation at offset (ai, aj)."""
    mi = infer_extent(m, local_m, ai)
    ni = infer_extent(n, local_n, aj)
    if mi == 0 or ni == 0:
        return 0, 0, Workload.NONE
    cls = Workload.FULL if (mi == m and ni == n) else Workload.PARTIAL
    return mi, ni, cls


def op_shape(trans: str, local_m: int, local_n: int,
             oi: int, oj: int) -> tuple[int, int]:
    """Available (rows, cols) of ``op(X)`` for a matrix with the given
    local dims and offsets.

    For ``trans == 'N'`` the available rows come from the row dimension;
    for ``trans == 'T'``/``'C'`` the roles swap — the semantic subtlety
    §IV-B calls out.
    """
    avail_rows = max(0, int(local_m) - int(oi))
    avail_cols = max(0, int(local_n) - int(oj))
    if trans == "N":
        return avail_rows, avail_cols
    if trans in ("T", "C"):
        return avail_cols, avail_rows
    raise ValueError(f"invalid trans {trans!r}")


@dataclass(frozen=True)
class GemmWork:
    """Per-matrix inferred GEMM workload."""

    m: int
    n: int
    k: int

    @property
    def cls(self) -> Workload:
        if self.m == 0 or self.n == 0:
            return Workload.NONE
        return Workload.PARTIAL  # refined by infer_gemm against required

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


def infer_gemm(transa: str, transb: str, m: int, n: int, k: int,
               a_local: tuple[int, int], a_off: tuple[int, int],
               b_local: tuple[int, int], b_off: tuple[int, int],
               c_local: tuple[int, int], c_off: tuple[int, int],
               ) -> tuple[GemmWork, Workload]:
    """Infer the actual ``C ← α·op(A)·op(B) + β·C`` workload for one matrix.

    Returns the inferred dims plus the classification.  ``k == 0`` with
    nonzero ``m, n`` still requires the β-scaling of ``C`` (a PARTIAL
    workload), matching BLAS semantics.
    """
    a_rows, a_cols = op_shape(transa, *a_local, *a_off)
    b_rows, b_cols = op_shape(transb, *b_local, *b_off)
    c_rows = max(0, c_local[0] - c_off[0])
    c_cols = max(0, c_local[1] - c_off[1])

    mi = max(0, min(m, c_rows, a_rows))
    ni = max(0, min(n, c_cols, b_cols))
    ki = max(0, min(k, a_cols, b_rows))

    work = GemmWork(mi, ni, ki)
    if mi == 0 or ni == 0:
        return work, Workload.NONE
    if (mi, ni, ki) == (m, n, k):
        return work, Workload.FULL
    return work, Workload.PARTIAL


def infer_trsm(side: str, m: int, n: int,
               t_local: tuple[int, int], t_off: tuple[int, int],
               b_local: tuple[int, int], b_off: tuple[int, int],
               ) -> tuple[int, int, Workload]:
    """Infer the actual triangular-solve workload for one matrix.

    ``side == 'L'`` solves ``op(T)·X = α·B`` with ``T`` of order ``m``;
    ``side == 'R'`` solves ``X·op(T) = α·B`` with ``T`` of order ``n``.
    The triangular order is limited by *both* dimensions of the stored
    ``T`` submatrix (it must contain the full order×order triangle).
    """
    t_rows = max(0, t_local[0] - t_off[0])
    t_cols = max(0, t_local[1] - t_off[1])
    t_order = min(t_rows, t_cols)
    b_rows = max(0, b_local[0] - b_off[0])
    b_cols = max(0, b_local[1] - b_off[1])

    if side == "L":
        mi = max(0, min(m, t_order, b_rows))
        ni = max(0, min(n, b_cols))
    elif side == "R":
        mi = max(0, min(m, b_rows))
        ni = max(0, min(n, t_order, b_cols))
    else:
        raise ValueError(f"invalid side {side!r}")

    if mi == 0 or ni == 0:
        return mi, ni, Workload.NONE
    cls = Workload.FULL if (mi, ni) == (m, n) else Workload.PARTIAL
    return mi, ni, cls
