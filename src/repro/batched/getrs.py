"""irrGETRS — batched solve from irrLU factors.

Completes the LAPACK pairing (``getrf`` + ``getrs``) on irregular
batches: given the packed factors and pivots produced by
:func:`~repro.batched.getrf.irr_getrf` and a batch of right-hand sides
(each with its own count of columns), solve every system with three
launched phases — a pivot-application kernel, the unit-lower irrTRSM and
the upper irrTRSM.  This is the composition the paper's Fig 14 calls
GETRS ("2×TRSM + LASWP") — here built from the irr kernels instead of
the vendor loop.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost
from ..device.simulator import Device
from ..errors import FactorizationError
from .engine import resolve_engine
from .interface import IrrBatch
from .panel import PanelPivots
from .trsm import irr_trsm

__all__ = ["irr_getrs"]


def irr_getrs(device: Device, factored: IrrBatch, pivots: PanelPivots,
              rhs: IrrBatch, *, trans: str = "N", stream=None,
              engine="bucketed", check_info: bool = True) -> None:
    """Solve ``A_i·X_i = B_i`` in place in ``rhs`` for every matrix.

    ``factored`` holds the packed LU of square matrices; ``rhs`` the
    right-hand sides (``rhs.m_vec`` must match ``factored.m_vec``; column
    counts may differ per matrix).  Only ``trans='N'`` is supported (the
    transposed solve is a trivial composition left to the caller).

    ``check_info=True`` (default) refuses factors whose ``pivots.info``
    reports an unrecovered pivot breakdown with a typed
    :class:`~repro.errors.FactorizationError` — substituting through a
    singular ``U`` would silently fill the solutions with Inf/NaN.  Pass
    ``check_info=False`` to reproduce LAPACK ``getrs``, which does not
    re-examine ``info``.

    ``engine`` selects the host execution path (see
    :func:`~repro.batched.engine.resolve_engine`): the bucketed engine
    rehearses every matrix's pivot swaps into one permutation gather and
    plan-caches the TRSM inference; results and costs are bitwise
    identical to the naive loops.
    """
    if trans != "N":
        raise NotImplementedError("only trans='N' is supported")
    if len(factored) != len(rhs):
        raise ValueError("factor and rhs batches must have equal size")
    if check_info and np.any(pivots.info != 0):
        bad = np.nonzero(pivots.info != 0)[0]
        raise FactorizationError(
            f"cannot solve from broken-down LU factors: matrices "
            f"{bad.tolist()} reported an unrecovered pivot breakdown "
            "(pivots.info != 0); re-factor with static_pivot=True or "
            "pass check_info=False")
    if np.any(factored.m_vec != factored.n_vec) or \
            np.any(rhs.m_vec != factored.m_vec):
        for i in range(len(factored)):
            m, n = factored.local_dims(i)
            if m != n:
                raise ValueError(f"matrix {i} is not square ({m}x{n})")
            if int(rhs.m_vec[i]) != m:
                raise ValueError(
                    f"rhs {i} has {int(rhs.m_vec[i])} rows, expected {m}")

    itemsize = rhs.itemsize
    engine = resolve_engine(engine)

    def apply_pivots() -> KernelCost:
        if engine is not None:
            return engine.exec_apply_pivots(rhs, pivots)
        nbytes = 0.0
        blocks = 0
        for i in range(len(rhs)):
            n, k = rhs.local_dims(i)
            if n == 0 or k == 0:
                continue
            b = rhs.matrix(i)
            for r in range(len(pivots.ipiv[i])):
                p = int(pivots.ipiv[i][r])
                if p != r:
                    b[[r, p], :] = b[[p, r], :]
                    nbytes += 4 * k * itemsize
            blocks += 1
        return KernelCost(bytes_read=nbytes / 2, bytes_written=nbytes / 2,
                          blocks=max(blocks, 1), kernel_class="swap",
                          memory_ramp=0.3)

    device.launch("irrgetrs:pivots", apply_pivots, stream=stream)
    m_req = factored.max_m
    n_req = rhs.max_n
    irr_trsm(device, "L", "L", "N", "U", m_req, n_req, 1.0,
             factored, (0, 0), rhs, (0, 0), stream=stream,
             name="irrgetrs:ltrsm", engine=engine)
    irr_trsm(device, "L", "U", "N", "N", m_req, n_req, 1.0,
             factored, (0, 0), rhs, (0, 0), stream=stream,
             name="irrgetrs:utrsm", engine=engine)
