"""irrTRSM — triangular solves on a nonuniform batch (§IV-D).

Two implementations:

* :func:`irr_trsm` — the paper's contribution: a *recursive* blocked solve
  written entirely against required dimensions and pointer offsets.  The
  host splits the triangular order in halves, recursing into the diagonal
  blocks and turning the off-diagonal block into an :func:`irr_gemm`; the
  base case is a single in-place substitution kernel.  Because the
  expanded interface carries offsets as scalars, recursion requires *no*
  workspace and *no* pointer-arithmetic kernels — the property §IV-D
  credits for making the recursive scheme possible on irregular batches.

* :func:`magma_style_trsm` — the MAGMA-2.6.1 baseline the paper compares
  against (Fig 6): explicit inversion of the diagonal blocks so the sweep
  becomes matrix multiplies, computed *out of place* into a workspace and
  copied back.  The explicit inverse costs accuracy (larger backward
  error) and the workspace/copy cost bandwidth — both effects reproduce.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..device.kernel import KernelCost, gemm_compute_ramp
from ..device.simulator import Device
from .abft import trsm_check, verified_launch
from .dcwi import Workload, infer_trsm
from .engine import resolve_engine
from .gemm import irr_gemm
from .interface import IrrBatch, Offsets

__all__ = ["irr_trsm", "magma_style_trsm", "TRSM_BASE_NB"]

#: base-case order below which the recursion stops and a single
#: substitution kernel handles the whole triangle (fits in shared memory).
TRSM_BASE_NB = 32

_MAGMA_IB = 16  # diagonal-block size inverted by the MAGMA-style baseline


def _check_args(side: str, uplo: str, trans: str, diag: str) -> None:
    if side not in ("L", "R"):
        raise ValueError(f"invalid side {side!r}")
    if uplo not in ("L", "U"):
        raise ValueError(f"invalid uplo {uplo!r}")
    if trans not in ("N", "T"):
        raise ValueError(f"invalid trans {trans!r}")
    if diag not in ("N", "U"):
        raise ValueError(f"invalid diag {diag!r}")


def _solve_small(t: np.ndarray, b: np.ndarray, side: str, uplo: str,
                 trans: str, diag: str, alpha: float) -> None:
    """In-place reference substitution on one matrix (base-case numerics)."""
    unit = diag == "U"
    lower = (uplo == "L") != (trans == "T")
    tt = t.T if trans == "T" else t
    if side == "L":
        b[...] = sla.solve_triangular(tt, alpha * b, lower=lower,
                                      unit_diagonal=unit, check_finite=False)
    else:
        # X op(T) = alpha B  <=>  op(T)^T X^T = alpha B^T
        x = sla.solve_triangular(tt.T, alpha * b.T, lower=not lower,
                                 unit_diagonal=unit, check_finite=False)
        b[...] = x.T


def _trsm_targets(side: str, m: int, n: int, T: IrrBatch, t_off: Offsets,
                  B: IrrBatch, b_off: Offsets
                  ) -> list[tuple[int, int, int, int]]:
    """``(i, mi, ni, order)`` for every member the base solve writes."""
    targets = []
    for i in range(len(B)):
        mi, ni, cls = infer_trsm(side, m, n, T.local_dims(i), t_off,
                                 B.local_dims(i), b_off)
        if cls is Workload.NONE:
            continue
        targets.append((i, mi, ni, mi if side == "L" else ni))
    return targets


def _base_kernel(device: Device, side: str, uplo: str, trans: str, diag: str,
                 m: int, n: int, alpha: float, T: IrrBatch, t_off: Offsets,
                 B: IrrBatch, b_off: Offsets, stream, kernel_class: str,
                 name: str, eng=None) -> KernelCost:
    """One launch solving every matrix's (DCWI-inferred) small triangle."""
    itemsize = B.itemsize
    order_req = m if side == "L" else n

    def kernel() -> KernelCost:
        if eng is not None:
            return eng.exec_trsm_base(device, side, uplo, trans, diag,
                                      m, n, alpha, T, t_off, B, b_off,
                                      kernel_class, _solve_small)
        flops = 0.0
        bytes_r = 0.0
        bytes_w = 0.0
        blocks = 0
        for i in range(len(B)):
            mi, ni, cls = infer_trsm(side, m, n, T.local_dims(i), t_off,
                                     B.local_dims(i), b_off)
            if cls is Workload.NONE:
                continue
            order = mi if side == "L" else ni
            t_sub = T.sub(i, t_off[0], t_off[1], order, order)
            b_sub = B.sub(i, b_off[0], b_off[1], mi, ni)
            _solve_small(t_sub, b_sub, side, uplo, trans, diag, alpha)
            rhs = ni if side == "L" else mi
            flops += float(order) * order * rhs
            bytes_r += (order * order / 2 + mi * ni) * itemsize
            bytes_w += mi * ni * itemsize
            blocks += max(1, -(-rhs // 32))
        smem = min(order_req * order_req * itemsize,
                   device.spec.max_shared_per_block)
        return KernelCost(
            flops=flops, bytes_read=bytes_r, bytes_written=bytes_w,
            blocks=max(blocks, 1), threads_per_block=128,
            shared_mem_per_block=smem,
            kernel_class=kernel_class,
            compute_ramp=gemm_compute_ramp(order_req, order_req, order_req,
                                           halfsize=32.0),
            peak_scale=B.peak_scale,
        )

    # Same fault-site / ABFT wiring as irr_gemm: B blocks are the
    # launch's outputs; with verification on, the in-place solve is
    # checked against the pre-solve checksum and re-executed from the
    # snapshot on mismatch.
    def _targets():
        return _trsm_targets(side, m, n, T, t_off, B, b_off)

    if device.verify_kernels:
        check = trsm_check(side, uplo, trans, diag, alpha, T, t_off,
                           B, b_off, _targets())
        return verified_launch(device, name, kernel, check, stream=stream)

    def _outputs():
        return [B.sub(i, b_off[0], b_off[1], mi, ni)
                for (i, mi, ni, _o) in _targets()]

    return device.launch(name, kernel, stream=stream, outputs=_outputs)


def irr_trsm(device: Device, side: str, uplo: str, trans: str, diag: str,
             m: int, n: int, alpha: float,
             T: IrrBatch, t_off: Offsets,
             B: IrrBatch, b_off: Offsets, *,
             stream=None, base_nb: int = TRSM_BASE_NB,
             kernel_class: str = "trsm_irr",
             name: str = "irrtrsm", engine=None) -> None:
    """Recursive nonuniform batched triangular solve, in place in ``B``.

    Solves ``op(T)·X = α·B`` (``side='L'``, ``T`` of required order ``m``)
    or ``X·op(T) = α·B`` (``side='R'``, order ``n``), overwriting ``B``
    with ``X``.  All eight (side, uplo, trans) combinations are supported;
    ``diag='U'`` treats the diagonal as unit (the L factor of an LU).

    ``engine`` selects the host execution path (see
    :mod:`repro.batched.engine`); the base-case numerics stay per-matrix
    in both engines — bucketing only removes inference/accounting
    overhead here and speeds up the off-diagonal irrGEMM updates.
    """
    _check_args(side, uplo, trans, diag)
    engine = resolve_engine(engine)
    if m < 0 or n < 0:
        raise ValueError("required dimensions must be nonnegative")
    if len(T) != len(B):
        raise ValueError("T and B batches must have equal batch size")
    order = m if side == "L" else n
    if order == 0 or (side == "L" and n == 0) or (side == "R" and m == 0):
        return

    if order <= base_nb:
        _base_kernel(device, side, uplo, trans, diag, m, n, alpha,
                     T, t_off, B, b_off, stream, kernel_class,
                     f"{name}:base", eng=engine)
        return

    # Split the required order; recurse on diagonal blocks, GEMM the
    # off-diagonal one.  Offsets move by scalars only.
    n1 = order // 2
    n2 = order - n1
    ti, tj = t_off
    bi, bj = b_off

    # Whether the "first" diagonal block to solve is the leading one.
    # Side L: forward for (L,N)/(U,T).  Side R mirrors: X·op(T)=B consumes
    # the triangle column-wise, so forward for (U,N)/(L,T).
    if side == "L":
        forward = (uplo == "L") == (trans == "N")
    else:
        forward = (uplo == "U") == (trans == "N")
    # The stored off-diagonal block of T: T21 for lower, T12 for upper.
    off_lower = uplo == "L"
    o_off = (ti + n1, tj) if off_lower else (ti, tj + n1)

    def recurse(which: str, a: float) -> None:
        first = which == "first"
        d_off = (ti, tj) if first else (ti + n1, tj + n1)
        sz = n1 if first else n2
        if side == "L":
            sub_b = (bi, bj) if first else (bi + n1, bj)
            irr_trsm(device, side, uplo, trans, diag, sz, n, a, T, d_off,
                     B, sub_b, stream=stream, base_nb=base_nb,
                     kernel_class=kernel_class, name=name, engine=engine)
        else:
            sub_b = (bi, bj) if first else (bi, bj + n1)
            irr_trsm(device, side, uplo, trans, diag, m, sz, a, T, d_off,
                     B, sub_b, stream=stream, base_nb=base_nb,
                     kernel_class=kernel_class, name=name, engine=engine)

    def update(a: float) -> None:
        """B_other ← a·B_other − op(T_off)·X_solved (or the R-side mirror)."""
        # Effective op(T_off) maps the solved part to the unsolved part.
        # For forward order the unsolved part is the second block.
        opT = trans
        if side == "L":
            if forward:
                c_off2, x_off = (bi + n1, bj), (bi, bj)
                dims = (n2, n, n1)
            else:
                c_off2, x_off = (bi, bj), (bi + n1, bj)
                dims = (n1, n, n2)
            irr_gemm(device, opT, "N", dims[0], dims[1], dims[2], -1.0,
                     T, o_off, B, x_off, a, B, c_off2, stream=stream,
                     kernel_class=kernel_class, name=f"{name}:gemm",
                     engine=engine)
        else:
            if forward:
                c_off2, x_off = (bi, bj + n1), (bi, bj)
                dims = (m, n2, n1)
            else:
                c_off2, x_off = (bi, bj), (bi, bj + n1)
                dims = (m, n1, n2)
            irr_gemm(device, "N", opT, dims[0], dims[1], dims[2], -1.0,
                     B, x_off, T, o_off, a, B, c_off2, stream=stream,
                     kernel_class=kernel_class, name=f"{name}:gemm",
                     engine=engine)

    if forward:
        recurse("first", alpha)
        update(alpha)
        recurse("second", 1.0)
    else:
        recurse("second", alpha)
        update(alpha)
        recurse("first", 1.0)


def magma_style_trsm(device: Device, side: str, uplo: str, trans: str,
                     diag: str, m: int, n: int, alpha: float,
                     T: IrrBatch, t_off: Offsets,
                     B: IrrBatch, b_off: Offsets, *,
                     stream=None, ib: int = _MAGMA_IB,
                     name: str = "magmatrsm") -> None:
    """MAGMA-2.6.1-style vbatched TRSM baseline (Fig 6 comparator).

    Inverts the ``ib × ib`` diagonal blocks of ``T`` explicitly, computes
    the solution *out of place* in a workspace with GEMM sweeps, then
    copies the workspace back over ``B`` — the copy and workspace
    management the paper's profiling identifies as the bottleneck, and the
    explicit inversion that costs backward error.

    Supports the (side='L', trans='N') cases used by the LU update (both
    uplos), which is the configuration Fig 6 benchmarks.
    """
    _check_args(side, uplo, trans, diag)
    if side != "L" or trans != "N":
        raise NotImplementedError(
            "the MAGMA-style baseline reproduces the Fig 6 configuration "
            "(side='L', trans='N') only")
    if m == 0 or n == 0:
        return

    itemsize = B.itemsize
    batch = len(B)

    # Workspace: out-of-place solution X, one per matrix (sized by DCWI).
    works: list[tuple[int, int, int]] = []   # (i, mi, ni)
    for i in range(batch):
        mi, ni, cls = infer_trsm(side, m, n, T.local_dims(i), t_off,
                                 B.local_dims(i), b_off)
        if cls is not Workload.NONE:
            works.append((i, mi, ni))
    wspace = [device.empty((mi, ni), dtype=B.dtype)
              for (_, mi, ni) in works]
    inv_space = [device.empty((mi, min(ib, mi) if mi else 0), dtype=B.dtype)
                 for (_, mi, ni) in works]

    # Kernel 1: explicitly invert the diagonal blocks.
    def invert_kernel() -> KernelCost:
        flops = 0.0
        bytes_rw = 0.0
        blocks = 0
        for w, (i, mi, _ni) in enumerate(works):
            t_sub = T.sub(i, t_off[0], t_off[1], mi, mi)
            for j0 in range(0, mi, ib):
                j1 = min(j0 + ib, mi)
                blk = t_sub[j0:j1, j0:j1]
                if diag == "U":
                    blk = np.tril(blk, -1) + np.eye(j1 - j0) if uplo == "L" \
                        else np.triu(blk, 1) + np.eye(j1 - j0)
                else:
                    blk = np.tril(blk) if uplo == "L" else np.triu(blk)
                # trtri-style explicit inversion (substitution against I):
                # never refuses an ill-conditioned triangle, it just loses
                # accuracy — the behaviour Fig 6 measures.
                inv_space[w].data[j0:j1, :j1 - j0] = sla.solve_triangular(
                    blk, np.eye(j1 - j0), lower=(uplo == "L"),
                    check_finite=False)
                d = j1 - j0
                flops += 2.0 * d ** 3
                bytes_rw += 2.0 * d * d * itemsize
                blocks += 1
        return KernelCost(flops=flops, bytes_read=bytes_rw / 2,
                          bytes_written=bytes_rw / 2, blocks=max(blocks, 1),
                          kernel_class="trsm_magma",
                          compute_ramp=gemm_compute_ramp(ib, ib, ib))

    device.launch(f"{name}:invdiag", invert_kernel, stream=stream)

    # Sweep over diagonal blocks: X_j = invT_jj (alpha B_j - T_j,<j X_<j).
    # Each sweep step is two launches (update GEMM + diag GEMM), matching
    # the MAGMA composition of the solve out of vbatched GEMM calls.
    mmax = max((mi for (_i, mi, _n) in works), default=0)
    forward = uplo == "L"
    steps = list(range(0, mmax, ib))
    if not forward:
        steps = steps[::-1]

    for j0 in steps:
        def step_update(j0=j0) -> KernelCost:
            flops = 0.0
            bytes_rw = 0.0
            blocks = 0
            for w, (i, mi, ni) in enumerate(works):
                if j0 >= mi:
                    continue
                j1 = min(j0 + ib, mi)
                t_sub = T.sub(i, t_off[0], t_off[1], mi, mi)
                b_sub = B.sub(i, b_off[0], b_off[1], mi, ni)
                x = wspace[w].data
                rhs = alpha * b_sub[j0:j1, :]
                if forward and j0 > 0:
                    rhs = rhs - t_sub[j0:j1, :j0] @ x[:j0, :]
                    flops += 2.0 * (j1 - j0) * ni * j0
                elif not forward and j1 < mi:
                    rhs = rhs - t_sub[j0:j1, j1:] @ x[j1:, :]
                    flops += 2.0 * (j1 - j0) * ni * (mi - j1)
                inv = inv_space[w].data[j0:j1, :j1 - j0]
                x[j0:j1, :] = inv @ rhs
                flops += 2.0 * (j1 - j0) ** 2 * ni
                bytes_rw += ((j1 - j0) * (mi + 2 * ni)) * itemsize
                blocks += max(1, -(-ni // 32))
            return KernelCost(flops=flops, bytes_read=bytes_rw * 0.7,
                              bytes_written=bytes_rw * 0.3,
                              blocks=max(blocks, 1),
                              kernel_class="trsm_magma",
                              compute_ramp=gemm_compute_ramp(ib, ib, ib))

        device.launch(f"{name}:sweep", step_update, stream=stream)

    # Final kernel: copy the workspace back over B (the overhead the
    # paper's profiler flags, significant for small sizes).
    def copy_back() -> KernelCost:
        nbytes = 0.0
        blocks = 0
        for w, (i, mi, ni) in enumerate(works):
            b_sub = B.sub(i, b_off[0], b_off[1], mi, ni)
            b_sub[...] = wspace[w].data
            nbytes += mi * ni * itemsize
            blocks += 1
        return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                          blocks=max(blocks, 1), kernel_class="swap")

    device.launch(f"{name}:copy", copy_back, stream=stream)

    for w_arr in wspace:
        w_arr.free()
    for w_arr in inv_space:
        w_arr.free()
