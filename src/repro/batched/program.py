"""Ahead-of-time compiled launch schedules for recurring batched workloads.

Serve traffic and multifrontal level schedules repeat the same *shape
signatures* endlessly, yet every dispatch re-runs DCWI inference,
bucketing, permutation rehearsal, packed-buffer construction and the
per-launch Python orchestration of the drivers in this package.  All of
that work is a pure function of the workload's shapes — never of the
payload values — so it can be done **once**, ahead of time.

:func:`compile_workload` turns a traffic signature (a multiset of shapes
plus an op: ``getrf``, ``getrs``, ``trsm``, ``gemm`` or a
``factor_solve`` pipeline) into a :class:`WorkloadProgram`:

* **Record once** — the op's normal driver (``irr_getrf`` & friends,
  running on a bucketed :class:`~repro.batched.engine.BatchEngine`) is
  executed on a synthetic payload of the compiled shapes while the
  device's ``launch`` entry point is temporarily wrapped by a recorder.
  Every launch closure the driver issues is captured, in order, into a
  fixed step list.  This is sound because the drivers' launch *sequences*
  depend only on dimensions; all value-dependent behaviour (pivot
  selection, breakdown handling, TRSM fallbacks) lives *inside* the
  closures, which are re-executed on replay.  Multi-stream schedules
  (``concurrent_swaps``) have event dependencies the linear step list
  cannot express and are rejected with :class:`CompileError`.
* **Preallocate once** — packed host staging and device buffers for every
  input batch are allocated at compile time and reused by every
  execution.  ``program.run(...)`` only copies payload bytes (one packed
  H2D transfer per input buffer, exactly like
  :meth:`IrrBatch.from_host_packed`): zero plan-cache misses and zero new
  device allocations after the first execution.
* **Lower uniform buckets** — a ``getrf`` signature whose matrices are
  uniform, small (``max(m, n) <= INTERLEAVED_MAX_N``) and single-panel is
  lowered to one struct-of-arrays launch over a persistent interleaved
  ``(m, n, batch)`` array, running
  :func:`~repro.batched.interleaved.interleaved_lu_core` in place —
  bitwise identical factors, pivots, breakdown diagnostics and
  ``KernelCost`` to the bucketed engine's interleaved panel bucket,
  without the per-run copy into scratch.
* **Fuse adjacent launches** — runs of consecutive recorded launches
  (panel→LASWP→TRSM→GEMM chains, factor→solve) are merged into single
  launch records executing the captured closures back to back and
  summing their costs (:func:`fuse_costs`): flops/bytes/blocks totals
  are preserved exactly; only the launch *count* (and with it the
  per-launch host overhead) drops.

Replays stay bitwise identical to ``engine="bucketed"`` because the
per-run host work the drivers would have done (pivot-state construction,
the growth-factor epilogue, ``check_info``) is replicated as explicit
host/guard steps with the drivers' exact arithmetic.  Pivot breakdowns
on a replay whose schedule assumed clean factors raise
:class:`GuardTripped`; callers fall back to the ordinary bucketed path
for that payload (see ``docs/API.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.kernel import KernelCost, peak_scale_for
from ..device.memory import DeviceArray
from ..device.simulator import Device
from ..errors import CorruptionDetected, FactorizationError
from .abft import ABFT_MAX_REEXEC, _LOOSE_FRAC, _SLACK, _abs_row_sum, \
    _lu_checksum, _mismatch, _row_sum
from .engine import BatchEngine, INTERLEAVED_MIN_BS, resolve_engine
from .gemm import irr_gemm
from .getrf import DEFAULT_PANEL_WIDTH, irr_getrf
from .getrs import irr_getrs
from .interface import IrrBatch
from .interleaved import INTERLEAVED_MAX_N, interleaved_lu_core
from .panel import PivotControl, _batch_abs_max, panel_shared_bytes
from .trsm import TRSM_BASE_NB, irr_trsm

__all__ = ["WorkloadProgram", "ProgramResult", "compile_workload",
           "fuse_costs", "CompileError", "GuardTripped", "PayloadMismatch"]


class CompileError(ValueError):
    """The requested workload cannot be compiled into a static program
    (e.g. multi-stream schedules, or an engine that resolves to the
    naive per-matrix path)."""


class PayloadMismatch(ValueError):
    """``program.run`` payloads do not match the compiled signature
    (wrong count, shape or dtype)."""


class GuardTripped(RuntimeError):
    """A replay guard failed: the payload took a value-dependent branch
    (pivot breakdown) the compiled schedule did not record.  Callers
    fall back to the ordinary bucketed path for this payload."""

    def __init__(self, message: str, info: np.ndarray | None = None):
        super().__init__(message)
        self.info = info


# ----------------------------------------------------------------------
# cost fusion
# ----------------------------------------------------------------------
def fuse_costs(costs: list[KernelCost]) -> KernelCost:
    """Combine the costs of back-to-back launches into one fused record.

    Work totals (flops, bytes, blocks) are **summed** — the fused kernel
    performs exactly the member kernels' work, so profiler totals stay
    identical modulo the launch-count reduction.  Geometry limits
    (threads, shared memory) take the max; the efficiency inputs are
    work-weighted means (flop-weighted compute ramp, byte-weighted
    memory ramp) with the kernel class of the flop-dominant member, so
    the roofline duration of the fused record stays close to the sum of
    its members'.
    """
    if not costs:
        raise ValueError("cannot fuse an empty launch run")
    if len(costs) == 1:
        return costs[0]
    flops = float(sum(c.flops for c in costs))
    bytes_read = float(sum(c.bytes_read for c in costs))
    bytes_written = float(sum(c.bytes_written for c in costs))
    dominant = max(costs, key=lambda c: (c.flops, c.bytes_total))
    if flops > 0:
        compute_ramp = sum(c.flops * c.compute_ramp for c in costs) / flops
    else:
        compute_ramp = max(c.compute_ramp for c in costs)
    bytes_total = sum(c.bytes_total for c in costs)
    if bytes_total > 0:
        memory_ramp = sum(c.bytes_total * c.memory_ramp
                          for c in costs) / bytes_total
    else:
        memory_ramp = max(c.memory_ramp for c in costs)
    return KernelCost(
        flops=flops, bytes_read=bytes_read, bytes_written=bytes_written,
        blocks=int(sum(c.blocks for c in costs)),
        threads_per_block=max(c.threads_per_block for c in costs),
        shared_mem_per_block=max(c.shared_mem_per_block for c in costs),
        kernel_class=dominant.kernel_class,
        compute_ramp=min(1.0, compute_ramp),
        memory_ramp=min(1.0, memory_ramp),
        peak_scale=min(c.peak_scale for c in costs))


# ----------------------------------------------------------------------
# steps
# ----------------------------------------------------------------------
class _HostStep:
    """Host-side work between launches (pivot reset, growth epilogue)."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def run(self, device: Device) -> None:
        self.fn()


class _GuardStep:
    """Raises :class:`GuardTripped` when the payload leaves the recorded
    schedule's validity region."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def run(self, device: Device) -> None:
        self.fn()


class _LaunchStep:
    """One captured kernel launch, replayed verbatim.

    ``outputs`` carries the originating driver's lazy output
    registration through to replay, so a compiled replay launch is a
    ``corrupt`` fault site exactly like its uncompiled counterpart.
    """

    __slots__ = ("name", "fn", "cost", "outputs")

    def __init__(self, name, fn, cost=None, outputs=None):
        self.name = name
        self.fn = fn
        self.cost = cost
        self.outputs = outputs

    def run(self, device: Device) -> None:
        device.launch(self.name, self.fn, self.cost, outputs=self.outputs)


class _FusedStep:
    """A run of captured launches executed as one launch record."""

    __slots__ = ("name", "parts", "_has_outputs")

    def __init__(self, parts: list[_LaunchStep]):
        self.parts = parts
        self.name = (f"fused[{len(parts)}]:"
                     f"{parts[0].name}..{parts[-1].name}")
        self._has_outputs = any(p.outputs is not None for p in parts)

    def run(self, device: Device) -> None:
        parts = self.parts

        def fused() -> KernelCost:
            costs = []
            for p in parts:
                out = p.fn() if p.fn is not None else None
                costs.append(out if isinstance(out, KernelCost) else p.cost)
            return fuse_costs(costs)

        if not self._has_outputs:
            device.launch(self.name, fused)
            return

        def outputs():
            outs = []
            for p in parts:
                if p.outputs is not None:
                    o = p.outputs() if callable(p.outputs) else p.outputs
                    outs.extend(o)
            return outs

        device.launch(self.name, fused, outputs=outputs)


def _fuse_steps(steps: list, window: int) -> list:
    """Merge runs of adjacent launch steps (host/guard steps are
    barriers) into :class:`_FusedStep` records, at most ``window``
    launches per fused record."""
    out: list = []
    run: list[_LaunchStep] = []

    def flush() -> None:
        if len(run) >= 2:
            out.append(_FusedStep(list(run)))
        else:
            out.extend(run)
        run.clear()

    for step in steps:
        if isinstance(step, _LaunchStep):
            run.append(step)
            if len(run) >= window:
                flush()
        else:
            flush()
            out.append(step)
    flush()
    return out


# ----------------------------------------------------------------------
# launch recorder
# ----------------------------------------------------------------------
class _Recorder:
    """Temporarily wraps ``device.launch`` to capture launches while the
    wrapped driver executes normally (record-by-execution)."""

    def __init__(self, device: Device):
        self.device = device
        self._steps: list[_LaunchStep] = []
        self._depth = 0

    def __enter__(self) -> "_Recorder":
        if self._depth == 0:
            orig = self.device.launch
            steps = self._steps

            def recording_launch(name, fn, cost=None, *, stream=None,
                                 wait_events=None, outputs=None):
                if stream is not None or wait_events:
                    raise CompileError(
                        f"launch {name!r} uses a side stream or event "
                        "dependencies; multi-stream schedules cannot be "
                        "compiled into a static program")
                returned = orig(name, fn, cost, outputs=outputs)
                steps.append(_LaunchStep(name, fn, cost, outputs=outputs))
                return returned

            self._orig = orig
            self.device.launch = recording_launch
        self._depth += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._depth -= 1
        if self._depth == 0:
            del self.device.launch   # re-expose the class method
        return False

    def take(self) -> list[_LaunchStep]:
        # keep the same list object: the wrapper closure captured it
        steps = list(self._steps)
        self._steps.clear()
        return steps


# ----------------------------------------------------------------------
# persistent buffers
# ----------------------------------------------------------------------
class _Arena:
    """One owning device allocation + staging area for a whole program.

    Every persistent buffer of a program reserves a contiguous range
    here, so a run's payload bytes move host-to-device in ONE packed
    transfer (:meth:`flush`, after the loaders have staged) and the
    results come back in one device-to-host transfer
    (:meth:`account_download`) — a single ``cudaMemcpy`` each way is
    physically possible exactly because all buffers share one
    allocation.  Compile-time rehearsal loads still transfer
    per-buffer; only :meth:`WorkloadProgram.run` uses the packed path.
    """

    def __init__(self, device: Device, dtype, capacity: int):
        self.device = device
        self.dtype = np.dtype(dtype)
        self.capacity = int(capacity)
        self.used = 0
        self.flat = device.empty((self.capacity,), dtype=self.dtype)
        self.staging = np.empty(self.capacity, dtype=self.dtype)
        self._buffers: list = []
        self._staged: set = set()

    def reserve(self, n: int, buf) -> int:
        off = self.used
        self.used += int(n)
        if self.used > self.capacity:
            raise CompileError(
                f"arena overflow: reserved {self.used} elements of "
                f"{self.capacity}")
        self._buffers.append(buf)
        return off

    def mark_staged(self, buf) -> None:
        self._staged.add(id(buf))

    def flush(self) -> None:
        """One packed H2D transfer for everything staged this run."""
        if not self._staged:
            return
        if len(self._staged) == len(self._buffers) and self.capacity:
            self.flat.copy_from_host(self.staging)
        else:
            for buf in self._buffers:
                if id(buf) in self._staged:
                    buf.flush_one()
        self._staged.clear()

    def account_download(self, nbytes: int) -> None:
        if nbytes:
            self.device._account_transfer(int(nbytes))

    def free(self) -> None:
        self.flat.free()


class _PackedBuffer:
    """Preallocated packed staging + device storage for one batch.

    Mirrors :meth:`IrrBatch.from_host_packed` — per-matrix device views
    into one flat allocation, one H2D transfer per :meth:`load` — but
    the allocation, the views and the :class:`IrrBatch` wrapper are
    built once at compile time and reused by every execution.  With an
    ``arena`` the storage is a range of the program-wide allocation and
    run-time uploads coalesce into the arena's single flush.
    """

    def __init__(self, device: Device, shapes, dtype, arena=None):
        self.device = device
        self.arena = arena
        self.shapes = [(int(m), int(n)) for (m, n) in shapes]
        self.dtype = np.dtype(dtype)
        sizes = [m * n for (m, n) in self.shapes]
        self.offsets = np.cumsum([0] + sizes).astype(np.int64)
        self.total = int(self.offsets[-1])
        self._has_empty = any(s == 0 for s in sizes)
        if arena is None:
            self.staging = np.empty(self.total, dtype=self.dtype)
            self.flat = device.empty((self.total,), dtype=self.dtype)
        else:
            base = arena.reserve(self.total, self)
            self.staging = arena.staging[base:base + self.total]
            self.flat = arena.flat[base:base + self.total]
        arrays = [DeviceArray(
            device,
            self.flat.data[int(o):int(o) + m * n].reshape((m, n)),
            base=self.flat)
            for (m, n), o in zip(self.shapes, self.offsets[:-1])]
        m_vec = np.array([m for (m, _n) in self.shapes], dtype=np.int64)
        n_vec = np.array([n for (_m, n) in self.shapes], dtype=np.int64)
        self.batch = IrrBatch(device, arrays, m_vec, n_vec)
        self.batch._packed = self.flat

    @property
    def nbytes(self) -> int:
        return self.total * self.dtype.itemsize

    def stage(self, payloads, *, label: str = "payload") -> None:
        """Copy payload bytes into the staging area (no transfer yet);
        shapes and dtype must match the compiled signature exactly."""
        if len(payloads) != len(self.shapes):
            raise PayloadMismatch(
                f"{label}: expected {len(self.shapes)} matrices, "
                f"got {len(payloads)}")
        for i, p in enumerate(payloads):
            a = np.asarray(p)
            if a.shape != self.shapes[i]:
                raise PayloadMismatch(
                    f"{label}[{i}]: expected shape {self.shapes[i]}, "
                    f"got {a.shape}")
            if a.dtype != self.dtype:
                raise PayloadMismatch(
                    f"{label}[{i}]: expected dtype {self.dtype}, "
                    f"got {a.dtype}")
            o = int(self.offsets[i])
            self.staging[o:o + a.size] = a.ravel()
        if self.arena is not None:
            self.arena.mark_staged(self)

    def flush_one(self) -> None:
        if self.total:
            self.flat.copy_from_host(self.staging)

    def load(self, payloads, *, label: str = "payload") -> None:
        """Stage + transfer immediately (one packed H2D for this
        buffer; used at compile time)."""
        self.stage(payloads, label=label)
        self.flush_one()
        if self.arena is not None:
            self.arena._staged.discard(id(self))

    def staged_matrix(self, i: int) -> np.ndarray:
        """Host staging view of member ``i`` (the payload as loaded —
        execution never touches staging, so this is the pre-run value)."""
        m, n = self.shapes[i]
        o = int(self.offsets[i])
        return self.staging[o:o + m * n].reshape((m, n))

    def seg_abs_max(self) -> np.ndarray:
        """Per-matrix ``max|A_i|`` over the device-resident data —
        bitwise identical to :func:`_batch_abs_max` (same value
        multiset per segment; max is exact and order-independent)."""
        if self._has_empty or self.total == 0:
            return _batch_abs_max(self.batch)
        # per-segment maxes over the flat storage; reduceat walks the
        # segments element-by-element and is ~30x slower here
        data = self.flat.data
        out = np.empty(len(self.shapes), dtype=np.float64)
        offs = self.offsets
        for i in range(len(out)):
            out[i] = np.max(np.abs(data[int(offs[i]):int(offs[i + 1])]))
        return out

    def download(self, *, account: bool = True) -> list[np.ndarray]:
        if account:
            return self.batch.to_host()
        return [np.array(a.data, copy=True) for a in self.batch.arrays]

    def free(self) -> None:
        self.batch.free()


class _InterleavedBuffer:
    """Persistent struct-of-arrays ``(m, n, batch)`` storage for a
    lowered uniform bucket (batch axis unit-stride)."""

    def __init__(self, device: Device, m: int, n: int, bs: int, dtype,
                 arena=None):
        self.device = device
        self.arena = arena
        self.m, self.n, self.bs = int(m), int(n), int(bs)
        self.dtype = np.dtype(dtype)
        shape = (self.m, self.n, self.bs)
        total = self.m * self.n * self.bs
        if arena is None:
            self.staging = np.empty(shape, dtype=self.dtype)
            self.dev = device.empty(shape, dtype=self.dtype)
        else:
            base = arena.reserve(total, self)
            self.staging = arena.staging[base:base + total].reshape(shape)
            self.dev = DeviceArray(
                device, arena.flat.data[base:base + total].reshape(shape),
                base=arena.flat)

    @property
    def nbytes(self) -> int:
        return self.m * self.n * self.bs * self.dtype.itemsize

    def stage(self, payloads, *, label: str = "payload") -> None:
        if len(payloads) != self.bs:
            raise PayloadMismatch(
                f"{label}: expected {self.bs} matrices, got {len(payloads)}")
        shape = (self.m, self.n)
        for b, p in enumerate(payloads):
            a = np.asarray(p)
            if a.shape != shape:
                raise PayloadMismatch(
                    f"{label}[{b}]: expected shape {shape}, got {a.shape}")
            if a.dtype != self.dtype:
                raise PayloadMismatch(
                    f"{label}[{b}]: expected dtype {self.dtype}, "
                    f"got {a.dtype}")
            self.staging[:, :, b] = a
        if self.arena is not None:
            self.arena.mark_staged(self)

    def flush_one(self) -> None:
        self.dev.copy_from_host(self.staging)

    def load(self, payloads, *, label: str = "payload") -> None:
        self.stage(payloads, label=label)
        self.flush_one()
        if self.arena is not None:
            self.arena._staged.discard(id(self))

    def staged_matrix(self, b: int) -> np.ndarray:
        """Host staging view of member ``b`` (pre-run payload value)."""
        return self.staging[:, :, b]

    def seg_abs_max(self) -> np.ndarray:
        return np.max(np.abs(self.dev.data), axis=(0, 1)).astype(np.float64)

    def download(self, *, account: bool = True) -> list[np.ndarray]:
        if account:
            self.device._account_transfer(self.dev.nbytes)
        data = self.dev.data
        return [np.ascontiguousarray(data[:, :, b]) for b in range(self.bs)]

    def free(self) -> None:
        self.dev.free()


class _PivotView:
    """Pivot carrier for recorded solve launches (mirrors the serving
    layer's view: a list of per-matrix pivot vectors + an info array)."""

    def __init__(self, ipiv: list, info: np.ndarray):
        self.ipiv = ipiv
        self.info = info


class _LoweredPivots:
    """Pivot state of an interleaved-lowered getrf (same fields the
    drivers populate on a :class:`PanelPivots`)."""

    def __init__(self, bs: int, k: int, dtype, *, pivot_tol: float,
                 static_pivot: bool, replace_scale: float | None):
        self.ipiv = [np.arange(k, dtype=np.int64) for _ in range(bs)]
        self.ctrl = PivotControl(np.zeros(bs), dtype, pivot_tol=pivot_tol,
                                 static_pivot=static_pivot,
                                 replace_scale=replace_scale)
        self.info = np.zeros(bs, dtype=np.int64)


# ----------------------------------------------------------------------
# per-run pivot-state reset (bitwise replica of PivotControl.__init__)
# ----------------------------------------------------------------------
def _reset_pivots(pivots, anorm: np.ndarray, tiny: float) -> None:
    ctrl = pivots.ctrl
    ctrl.anorm[...] = anorm
    np.maximum(tiny, ctrl.pivot_tol * ctrl.anorm, out=ctrl.thresh)
    if ctrl.static_pivot:
        ctrl.repl[...] = np.where(ctrl.anorm > 0.0,
                                  ctrl.replace_scale * ctrl.anorm, 0.0)
    else:
        ctrl.repl[...] = 0.0
    ctrl.n_replaced[...] = 0
    ctrl.min_pivot[...] = np.inf
    ctrl.growth[...] = 1.0
    pivots.info[...] = 0
    # drop the permutation-rehearsal memo cached on the pivot object by
    # the engine's pivot-apply body: it is keyed on dims only and would
    # replay a stale permutation otherwise.
    pivots.__dict__.pop("_rehearsal", None)


def _growth_epilogue(buf, ctrl) -> None:
    """The driver's element-growth epilogue, replayed per run."""
    post = buf.seg_abs_max()
    np.divide(post, ctrl.anorm, out=ctrl.growth, where=ctrl.anorm > 0.0)


_GETRS_BROKEN_MSG = (
    "cannot solve from broken-down LU factors: matrices {bad} reported an "
    "unrecovered pivot breakdown (pivots.info != 0); re-factor with "
    "static_pivot=True or pass check_info=False")


# ----------------------------------------------------------------------
# program-level ABFT (checksum verification over whole replays)
# ----------------------------------------------------------------------
def _program_factor_check(get_fac, get_src, pivots, nmembers: int,
                          dtype) -> int | None:
    """First member whose packed factors fail ``P^T.L.(U.w) = A0.w``.

    ``get_src(i)`` reads the *staged* payload (host staging is untouched
    by execution, so the pre-factorization checksum is recomputable
    after the run).  Broken members are excluded; statically repaired
    members get the loose gross-corruption threshold.
    """
    eps = float(np.finfo(dtype).eps)
    tiny = float(np.finfo(dtype).tiny)
    for i in range(nmembers):
        if pivots.info[i] != 0:
            continue
        fac = get_fac(i)
        k = min(fac.shape)
        if k == 0:
            continue
        src = get_src(i)
        got = _lu_checksum(fac, pivots.ipiv[i])
        mag = _lu_checksum(fac, pivots.ipiv[i], absolute=True)
        r0a = _abs_row_sum(src)
        tol = _SLACK * eps * (k + 8) * (mag + r0a) + _SLACK * tiny
        if pivots.ctrl.n_replaced[i] > 0:
            tol = tol + _LOOSE_FRAC * (mag + r0a + 1.0)
        if _mismatch(got, _row_sum(src), tol):
            return i
    return None


def _program_solve_check(get_a, get_b, get_x, pivots, members,
                         dtype) -> int | None:
    """First member whose solution fails the residual checksum
    ``A0.(X.w) = B0.w`` (backward-stable solves satisfy it to
    ``O(n.eps.|A0|.|X|)`` regardless of conditioning)."""
    eps = float(np.finfo(dtype).eps)
    tiny = float(np.finfo(dtype).tiny)
    for i in members:
        if pivots.info[i] != 0:
            continue
        a0 = get_a(i)
        x = get_x(i)
        if x is None or x.size == 0:
            continue
        got = a0 @ _row_sum(x)
        mag = np.abs(a0) @ _abs_row_sum(x)
        ref = _row_sum(get_b(i))
        mag = mag + _abs_row_sum(get_b(i))
        n = a0.shape[0]
        tol = _SLACK * eps * (n + 8) * mag + _SLACK * tiny
        if pivots.ctrl.n_replaced[i] > 0:
            tol = tol + _LOOSE_FRAC * (mag + 1.0)
        if _mismatch(got, ref, tol):
            return i
    return None


# ----------------------------------------------------------------------
# the program object
# ----------------------------------------------------------------------
@dataclass
class ProgramResult:
    """Host-side outputs of one :meth:`WorkloadProgram.run`."""

    factors: list | None = None
    ipiv: list | None = None
    info: np.ndarray | None = None
    n_replaced: np.ndarray | None = None
    min_pivot: np.ndarray | None = None
    growth: np.ndarray | None = None
    #: per-member solutions, aligned with the compiled batch; ``None``
    #: entries are members without a right-hand side.
    solutions: list | None = None


class WorkloadProgram:
    """A fixed, replayable launch schedule with persistent buffers.

    Built by :func:`compile_workload`; execute with :meth:`run`, which
    only copies payload bytes, replays the recorded steps and downloads
    the results — no planning, no allocation.
    """

    def __init__(self, device: Device, op: str, signature: tuple,
                 steps: list, inputs: dict, optional: set,
                 collect, buffers: list, engine: BatchEngine,
                 arena: "_Arena | None" = None):
        self.device = device
        self.op = op
        self.signature = signature
        self.steps = steps
        self.engine = engine
        self.runs = 0
        self._inputs = inputs          # name -> loader(payload)
        self._optional = optional
        self._collect = collect
        self._buffers = buffers
        self._arena = arena
        self._freed = False
        #: optional ABFT verifier ``() -> first bad member | None``,
        #: consulted after each execution when ``device.verify_kernels``
        #: is on; set by the getrf / factor_solve compilers.
        self._verifier = None
        #: Device-resident factored batch after a :meth:`run` — set for
        #: getrf / factor_solve programs, whose factors live in the
        #: arena as an :class:`IrrBatch` (``None`` for other ops).
        #: Contents are only meaningful until the next ``run``;
        #: the serving layer's mixed-precision finisher reads it to run
        #: correction solves against the resident factors without
        #: re-uploading them.
        self.factor_batch: IrrBatch | None = None

    # -- inspection ----------------------------------------------------
    @property
    def n_launches(self) -> int:
        """Launch records issued per execution (after fusion)."""
        return sum(1 for s in self.steps
                   if isinstance(s, (_LaunchStep, _FusedStep)))

    @property
    def n_fused(self) -> int:
        """Captured launches folded away by fusion per execution."""
        return sum(len(s.parts) - 1 for s in self.steps
                   if isinstance(s, _FusedStep))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WorkloadProgram(op={self.op!r}, "
                f"launches={self.n_launches}, fused={self.n_fused}, "
                f"runs={self.runs})")

    # -- execution -----------------------------------------------------
    def run(self, *, download: bool = True, **payloads) -> ProgramResult:
        """Replay the compiled schedule on new payload values.

        Payload keyword names depend on the op (``a`` for matrices,
        ``b`` for right-hand sides, ``c`` for GEMM outputs, ``ipiv`` /
        ``info`` for precomputed pivots).  Raises
        :class:`PayloadMismatch` on any signature deviation and
        :class:`GuardTripped` when a replay guard fails (caller falls
        back to the bucketed path for this payload).
        """
        if self._freed:
            raise RuntimeError("cannot run a freed WorkloadProgram")
        required = set(self._inputs) - self._optional
        given = set(payloads)
        if not (required <= given and given <= set(self._inputs)):
            raise PayloadMismatch(
                f"{self.op} program expects payloads {sorted(required)} "
                f"(optional: {sorted(self._optional)}), got {sorted(given)}")
        for name, loader in self._inputs.items():
            if name in given:
                loader(payloads[name])
        verify = self.device.verify_kernels and self._verifier is not None
        attempts = (ABFT_MAX_REEXEC + 1) if verify else 1
        for attempt in range(attempts):
            if self._arena is not None:
                self._arena.flush()
            for step in self.steps:
                step.run(self.device)
            self.device.synchronize()
            if not verify:
                break
            bad = self._verifier()
            if bad is None:
                break
            site = f"program:{self.op}"
            if attempt >= ABFT_MAX_REEXEC:
                raise CorruptionDetected(
                    site, bad, f"checksum mismatch survived "
                    f"{ABFT_MAX_REEXEC} program re-execution(s)")
            # Re-execute the whole program from the (host-side, intact)
            # staging payloads: re-mark every buffer staged so the next
            # flush re-uploads the clean bytes.
            self.device.recovery_log.record(
                "kernel-reexec", site=site, attempt=attempt + 1,
                detail=f"checksum mismatch at member {bad}; re-staged "
                       f"payloads and re-executed the program")
            if self._arena is not None:
                for buf in self._arena._buffers:
                    self._arena.mark_staged(buf)
        self.runs += 1
        return self._collect(download)

    def free(self) -> None:
        """Release the persistent device buffers (idempotent)."""
        if self._freed:
            return
        self._freed = True
        for buf in self._buffers:
            buf.free()

    def __enter__(self) -> "WorkloadProgram":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
_LU_KEYS = frozenset({"nb", "panel", "laswp_variant", "concurrent_swaps",
                      "pivot_tol", "static_pivot", "replace_scale"})


def _resolve_compile_engine(engine) -> BatchEngine:
    if engine is None:
        return BatchEngine("compiled")
    eng = resolve_engine(engine)
    if eng is None:
        raise CompileError(
            "cannot compile the naive per-matrix path; pass a bucketed "
            "or compiled engine")
    return eng


def _check_shapes(shapes, what: str) -> list[tuple[int, int]]:
    out = []
    for s in shapes:
        m, n = s
        if int(m) < 0 or int(n) < 0:
            raise CompileError(f"{what} shape {s} is negative")
        out.append((int(m), int(n)))
    return out


def _lowerable(shapes: list[tuple[int, int]], lu_kwargs: dict,
               device: Device, itemsize: int) -> bool:
    """True when the bucketed engine would execute this getrf signature
    as exactly one fused-panel launch routed through one interleaved
    bucket — the regime the program lowers to a persistent
    struct-of-arrays kernel."""
    if not shapes or not set(lu_kwargs) <= _LU_KEYS:
        return False
    m, n = shapes[0]
    if any(s != (m, n) for s in shapes):
        return False
    bs = len(shapes)
    nb = lu_kwargs.get("nb", "auto")
    nb = DEFAULT_PANEL_WIDTH if nb == "auto" else nb
    if not isinstance(nb, int) or nb < 1:
        return False
    return (bs >= INTERLEAVED_MIN_BS
            and 1 <= n <= m <= INTERLEAVED_MAX_N
            and n <= nb                       # single panel, no right block
            and lu_kwargs.get("panel", "auto") in ("auto", "fused")
            and lu_kwargs.get("laswp_variant",
                              "rehearsed") in ("rehearsed", "looped")
            and panel_shared_bytes(m, 0, n, itemsize) <=
            device.spec.max_shared_per_block)


def compile_workload(device: Device, op: str, shapes, *,
                     dtype=np.float64, rhs_shapes=None,
                     lu_kwargs: dict | None = None,
                     op_kwargs: dict | None = None,
                     engine=None, solve_grouping: str = "batch",
                     fuse: bool = True, fuse_window: int = 8,
                     lower_interleaved: bool = True) -> WorkloadProgram:
    """Compile a traffic signature into a :class:`WorkloadProgram`.

    Parameters
    ----------
    op:
        ``"getrf"`` — factor a batch (payload ``a``); ``"getrs"`` —
        solve from precomputed factors (payloads ``a``, ``ipiv``, ``b``,
        optional ``info``); ``"factor_solve"`` — factor then solve in
        one schedule (payloads ``a``, ``b``; ``b`` entries may be
        ``None`` for factor-only members); ``"trsm"`` / ``"gemm"`` —
        a single triangular-solve / multiply-accumulate launch group
        (payloads ``a``, ``b`` (+ ``c``)).
    shapes:
        The signature's matrix shapes, one ``(m, n)`` per member (for
        ``gemm``: one ``((ma, na), (mb, nb), (mc, nc))`` triple per
        member).
    rhs_shapes:
        Right-hand-side shapes for ``getrs``/``factor_solve``/``trsm``
        (``factor_solve`` accepts ``None`` entries for members without
        a solve).
    lu_kwargs:
        The LU policy of the factor step (same keys as
        :func:`~repro.batched.getrf.irr_getrf`).  ``concurrent_swaps``
        is rejected: its side-stream schedule cannot be replayed.
    solve_grouping:
        ``"batch"`` — one solve over every member with an RHS (the plain
        ``irr_getrf``+``irr_getrs`` pipeline); ``"order_class"`` — solve
        members sub-batched by TRSM order class exactly like
        :class:`~repro.serve.service.SolverService` dispatch groups.
    fuse / fuse_window:
        Merge runs of adjacent launches (at most ``fuse_window`` per
        record) into fused launch records.
    lower_interleaved:
        Lower uniform small single-panel ``getrf`` signatures to the
        persistent interleaved struct-of-arrays kernel.
    """
    lu_kwargs = dict(lu_kwargs or {})
    op_kwargs = dict(op_kwargs or {})
    if lu_kwargs.get("concurrent_swaps"):
        raise CompileError(
            "concurrent_swaps schedules use a side stream and events; "
            "they cannot be compiled into a static program")
    eng = _resolve_compile_engine(engine)
    dt = np.dtype(dtype)
    if op == "getrf":
        return _compile_getrf(device, shapes, dt, lu_kwargs, eng, fuse,
                              fuse_window, lower_interleaved)
    if op == "getrs":
        return _compile_getrs(device, shapes, rhs_shapes, dt, eng, fuse,
                              fuse_window)
    if op == "factor_solve":
        return _compile_factor_solve(device, shapes, rhs_shapes, dt,
                                     lu_kwargs, eng, solve_grouping, fuse,
                                     fuse_window)
    if op == "trsm":
        return _compile_trsm(device, shapes, rhs_shapes, dt, op_kwargs,
                             eng, fuse, fuse_window)
    if op == "gemm":
        return _compile_gemm(device, shapes, dt, op_kwargs, eng, fuse,
                             fuse_window)
    raise CompileError(f"unknown workload op {op!r}")


def _maybe_fuse(steps: list, fuse: bool, window: int) -> list:
    return _fuse_steps(steps, window) if fuse and window >= 2 else steps


def _synthetic_lu(m: int, n: int, dt: np.dtype) -> np.ndarray:
    """Well-conditioned rehearsal payload (identity never breaks down)."""
    return np.eye(m, n, dtype=dt)


# -- getrf -------------------------------------------------------------
def _compile_getrf(device, shapes, dt, lu_kwargs, eng, fuse, fuse_window,
                   lower_interleaved) -> WorkloadProgram:
    shapes = _check_shapes(shapes, "getrf")
    signature = ("getrf", dt.str, tuple(shapes),
                 tuple(sorted(lu_kwargs.items())))
    if lower_interleaved and _lowerable(shapes, lu_kwargs, device,
                                        dt.itemsize):
        return _compile_getrf_interleaved(device, shapes, dt, lu_kwargs,
                                          eng, signature)
    arena = _Arena(device, dt, sum(m * n for (m, n) in shapes))
    buf = _PackedBuffer(device, shapes, dt, arena=arena)
    buf.load([_synthetic_lu(m, n, dt) for (m, n) in shapes],
             label="compile")
    rec = _Recorder(device)
    with rec:
        pivots = irr_getrf(device, buf.batch, engine=eng, **lu_kwargs)
    launches = rec.take()
    device.synchronize()

    tiny = float(np.finfo(dt).tiny)
    ctrl = pivots.ctrl
    steps: list = [_HostStep(lambda: _reset_pivots(
        pivots, buf.seg_abs_max(), tiny))]
    steps.extend(launches)
    if launches:
        steps.append(_HostStep(lambda: _growth_epilogue(buf, ctrl)))
    steps = _maybe_fuse(steps, fuse, fuse_window)

    def collect(download: bool) -> ProgramResult:
        if download:
            arena.account_download(buf.nbytes)
        return ProgramResult(
            factors=buf.download(account=False) if download else None,
            ipiv=[ip.copy() for ip in pivots.ipiv],
            info=pivots.info.copy(),
            n_replaced=ctrl.n_replaced.copy(),
            min_pivot=ctrl.min_pivot.copy(),
            growth=ctrl.growth.copy())

    prog = WorkloadProgram(device, "getrf", signature, steps,
                           inputs={"a": buf.stage}, optional=set(),
                           collect=collect, buffers=[arena], engine=eng,
                           arena=arena)
    prog.factor_batch = buf.batch
    prog._verifier = lambda: _program_factor_check(
        buf.batch.matrix, buf.staged_matrix, pivots, len(shapes), dt)
    return prog


def _compile_getrf_interleaved(device, shapes, dt, lu_kwargs, eng,
                               signature) -> WorkloadProgram:
    """Lower a uniform small single-panel getrf to one persistent
    struct-of-arrays launch (bitwise identical to the bucketed engine's
    interleaved panel bucket, including cost and diagnostics)."""
    m, n = shapes[0]
    bs = len(shapes)
    nb = lu_kwargs.get("nb", "auto")
    nb = DEFAULT_PANEL_WIDTH if nb == "auto" else int(nb)
    ib = min(nb, n)          # == n: single panel
    npiv = n
    smem = panel_shared_bytes(m, 0, ib, dt.itemsize)
    peak_scale = peak_scale_for(dt)
    itemsize = dt.itemsize

    arena = _Arena(device, dt, m * n * bs)
    buf = _InterleavedBuffer(device, m, n, bs, dt, arena=arena)
    pivots = _LoweredPivots(
        bs, min(m, n), dt,
        pivot_tol=lu_kwargs.get("pivot_tol", 0.0),
        static_pivot=lu_kwargs.get("static_pivot", False),
        replace_scale=lu_kwargs.get("replace_scale"))
    ctrl = pivots.ctrl
    tiny = float(np.finfo(dt).tiny)
    data = buf.dev.data

    def kernel() -> KernelCost:
        # the engine's _panel_interleaved body, operating in place on
        # the persistent interleaved array instead of copying through
        # per-call scratch (same elementwise ops on the same values).
        ipiv, nz_counts, first_bad, n_rep, min_p = interleaved_lu_core(
            data, npiv, thresh=ctrl.thresh, repl=ctrl.repl)
        for b in range(bs):
            pivots.ipiv[b][0:npiv] = ipiv[:, b]
            if first_bad[b] and pivots.info[b] == 0:
                pivots.info[b] = int(first_bad[b])
        ctrl.n_replaced += n_rep
        np.minimum(ctrl.min_pivot, min_p, out=ctrl.min_pivot)
        flops = 0
        for c in range(npiv):
            cnt = int(nz_counts[c])
            if cnt and c + 1 < m:
                flops += cnt * (m - c - 1)
                if c + 1 < n:
                    flops += 2 * cnt * (m - c - 1) * (n - c - 1)
        nbytes = float(bs * m * n) * itemsize
        return KernelCost(
            flops=float(flops), bytes_read=nbytes, bytes_written=nbytes,
            blocks=max(bs, 1), threads_per_block=256,
            shared_mem_per_block=smem, kernel_class="getf2",
            compute_ramp=min(1.0, ib / 16.0),
            peak_scale=peak_scale)

    steps: list = [
        _HostStep(lambda: _reset_pivots(pivots, buf.seg_abs_max(), tiny)),
        _LaunchStep("irrgetf2", kernel, outputs=lambda: [data]),
        _HostStep(lambda: _growth_epilogue(buf, ctrl)),
    ]

    def collect(download: bool) -> ProgramResult:
        if download:
            arena.account_download(buf.nbytes)
        return ProgramResult(
            factors=buf.download(account=False) if download else None,
            ipiv=[ip.copy() for ip in pivots.ipiv],
            info=pivots.info.copy(),
            n_replaced=ctrl.n_replaced.copy(),
            min_pivot=ctrl.min_pivot.copy(),
            growth=ctrl.growth.copy())

    prog = WorkloadProgram(device, "getrf", signature, steps,
                           inputs={"a": buf.stage}, optional=set(),
                           collect=collect, buffers=[arena], engine=eng,
                           arena=arena)
    # the interleaved struct-of-arrays lowering has no IrrBatch view
    prog.factor_batch = getattr(buf, "batch", None)
    prog._verifier = lambda: _program_factor_check(
        lambda b: data[:, :, b], buf.staged_matrix, pivots, bs, dt)
    return prog


# -- getrs -------------------------------------------------------------
def _compile_getrs(device, shapes, rhs_shapes, dt, eng, fuse,
                   fuse_window) -> WorkloadProgram:
    shapes = _check_shapes(shapes, "getrs")
    if rhs_shapes is None:
        raise CompileError("getrs compilation requires rhs_shapes")
    rhs_shapes = _check_shapes(rhs_shapes, "getrs rhs")
    if len(rhs_shapes) != len(shapes):
        raise CompileError("getrs needs one rhs shape per matrix")
    for i, ((m, n), (rm, _rn)) in enumerate(zip(shapes, rhs_shapes)):
        if m != n:
            raise CompileError(f"getrs matrix {i} is not square: {m}x{n}")
        if rm != n:
            raise CompileError(
                f"getrs rhs {i} has {rm} rows for order {n}")
    signature = ("getrs", dt.str, tuple(shapes), tuple(rhs_shapes))

    arena = _Arena(device, dt,
                   sum(m * n for (m, n) in rhs_shapes)
                   + sum(m * n for (m, n) in shapes))
    # RHS first: the downloaded solutions occupy one leading range
    b_buf = _PackedBuffer(device, rhs_shapes, dt, arena=arena)
    a_buf = _PackedBuffer(device, shapes, dt, arena=arena)
    a_buf.load([_synthetic_lu(m, n, dt) for (m, n) in shapes],
               label="compile")
    b_buf.load([np.ones(s, dtype=dt) for s in rhs_shapes], label="compile")
    view = _PivotView([np.arange(n, dtype=np.int64) for (_m, n) in shapes],
                      np.zeros(len(shapes), dtype=np.int64))
    rec = _Recorder(device)
    with rec:
        irr_getrs(device, a_buf.batch, view, b_buf.batch, engine=eng)
    steps: list = list(rec.take())
    device.synchronize()
    steps = _maybe_fuse(steps, fuse, fuse_window)

    def load_ipiv(ipiv_list) -> None:
        if len(ipiv_list) != len(shapes):
            raise PayloadMismatch(
                f"ipiv: expected {len(shapes)} vectors, "
                f"got {len(ipiv_list)}")
        for i, ip in enumerate(ipiv_list):
            arr = np.asarray(ip, dtype=np.int64)
            if arr.shape != (shapes[i][1],):
                raise PayloadMismatch(
                    f"ipiv[{i}]: expected {shapes[i][1]} pivots, "
                    f"got shape {arr.shape}")
            view.ipiv[i] = arr
        view.__dict__.pop("_rehearsal", None)

    def load_info(info) -> None:
        # replicate irr_getrs's check_info on caller-provided codes
        # (None — the default — means clean factors).
        view.info[...] = 0
        if info is None:
            return
        codes = np.asarray(info, dtype=np.int64)
        if codes.shape != (len(shapes),):
            raise PayloadMismatch(
                f"info: expected {len(shapes)} codes, got {codes.shape}")
        if np.any(codes != 0):
            bad = np.nonzero(codes != 0)[0]
            raise FactorizationError(
                _GETRS_BROKEN_MSG.format(bad=bad.tolist()))

    inputs = {"info": load_info, "ipiv": load_ipiv, "a": a_buf.stage,
              "b": b_buf.stage}

    def collect(download: bool) -> ProgramResult:
        if download:
            arena.account_download(b_buf.nbytes)
        return ProgramResult(
            solutions=b_buf.download(account=False) if download else None)

    return WorkloadProgram(device, "getrs", signature, steps,
                           inputs=inputs, optional={"info"},
                           collect=collect, buffers=[arena],
                           engine=eng, arena=arena)


# -- factor + solve pipeline -------------------------------------------
def _compile_factor_solve(device, shapes, rhs_shapes, dt, lu_kwargs, eng,
                          solve_grouping, fuse, fuse_window
                          ) -> WorkloadProgram:
    shapes = _check_shapes(shapes, "factor_solve")
    if rhs_shapes is None:
        raise CompileError("factor_solve compilation requires rhs_shapes "
                           "(entries may be None for factor-only members)")
    if len(rhs_shapes) != len(shapes):
        raise CompileError("factor_solve needs one rhs entry per matrix")
    if solve_grouping not in ("batch", "order_class"):
        raise CompileError(f"unknown solve_grouping {solve_grouping!r}")
    rhs_norm: list[tuple[int, int] | None] = []
    for i, rs in enumerate(rhs_shapes):
        if rs is None:
            rhs_norm.append(None)
            continue
        (m, n) = shapes[i]
        if m != n:
            raise CompileError(
                f"factor_solve member {i} has an RHS but a non-square "
                f"matrix {m}x{n}")
        rm, rn = int(rs[0]), int(rs[1])
        if rm != n:
            raise CompileError(
                f"factor_solve rhs {i} has {rm} rows for order {n}")
        rhs_norm.append((rm, rn))
    sel = [i for i, rs in enumerate(rhs_norm) if rs is not None]
    signature = ("factor_solve", dt.str, tuple(shapes), tuple(rhs_norm),
                 tuple(sorted(lu_kwargs.items())), solve_grouping)

    arena = _Arena(device, dt,
                   sum(m * n for (m, n) in shapes)
                   + sum(m * n for rs in rhs_norm if rs is not None
                         for (m, n) in [rs]))
    a_buf = _PackedBuffer(device, shapes, dt, arena=arena)
    a_buf.load([_synthetic_lu(m, n, dt) for (m, n) in shapes],
               label="compile")
    rec = _Recorder(device)
    with rec:
        pivots = irr_getrf(device, a_buf.batch, engine=eng, **lu_kwargs)
    factor_launches = rec.take()
    tiny = float(np.finfo(dt).tiny)
    ctrl = pivots.ctrl
    steps: list = [_HostStep(lambda: _reset_pivots(
        pivots, a_buf.seg_abs_max(), tiny))]
    steps.extend(factor_launches)
    if factor_launches:
        steps.append(_HostStep(lambda: _growth_epilogue(a_buf, ctrl)))

    views: list[_PivotView] = []
    rhs_bufs: list[tuple[_PackedBuffer, list[int]]] = []
    if sel:
        guard_idx = np.asarray(sel, dtype=np.int64)

        def guard() -> None:
            if np.any(pivots.info[guard_idx] != 0):
                bad = guard_idx[pivots.info[guard_idx] != 0]
                raise GuardTripped(
                    f"pivot breakdown during compiled replay (matrices "
                    f"{bad.tolist()}); the recorded solve schedule "
                    f"assumes clean factors — fall back to the bucketed "
                    f"path for this payload", info=pivots.info.copy())

        steps.append(_GuardStep(guard))

        if solve_grouping == "batch":
            groups = [list(sel)]
        else:
            # the serving layer's TRSM order classes, ascending
            by_order: dict[int, list[int]] = {}
            for i in sel:
                order = shapes[i][1]
                ocls = order if order > TRSM_BASE_NB else 0
                by_order.setdefault(ocls, []).append(i)
            groups = [by_order[c] for c in sorted(by_order)]

        for idxs in groups:
            rbuf = _PackedBuffer(device, [rhs_norm[i] for i in idxs], dt,
                                 arena=arena)
            rbuf.load([np.ones(rhs_norm[i], dtype=dt) for i in idxs],
                      label="compile")
            rhs_bufs.append((rbuf, idxs))
            if solve_grouping == "batch" and len(idxs) == len(shapes):
                carrier = pivots           # the plain-pipeline parity case
            else:
                fsub = IrrBatch(device,
                                [a_buf.batch.arrays[i] for i in idxs],
                                a_buf.batch.m_vec[np.asarray(idxs)],
                                a_buf.batch.n_vec[np.asarray(idxs)])
                carrier = _PivotView(
                    [pivots.ipiv[i] for i in idxs],
                    pivots.info[np.asarray(idxs)])
                views.append(carrier)
            with rec:
                if carrier is pivots:
                    irr_getrs(device, a_buf.batch, pivots, rbuf.batch,
                              engine=eng, check_info=False)
                else:
                    irr_getrs(device, fsub, carrier, rbuf.batch,
                              engine=eng, check_info=False)
            steps.extend(rec.take())
    device.synchronize()

    if views:
        def drop_view_memos() -> None:
            for v in views:
                v.__dict__.pop("_rehearsal", None)
        steps.insert(0, _HostStep(drop_view_memos))
    steps = _maybe_fuse(steps, fuse, fuse_window)

    def load_rhs(b_list) -> None:
        if len(b_list) != len(shapes):
            raise PayloadMismatch(
                f"b: expected {len(shapes)} entries (None for factor-only "
                f"members), got {len(b_list)}")
        for i, b in enumerate(b_list):
            if (b is None) != (rhs_norm[i] is None):
                raise PayloadMismatch(
                    f"b[{i}]: rhs presence does not match the compiled "
                    f"signature")
        for rbuf, idxs in rhs_bufs:
            rbuf.stage([b_list[i] for i in idxs], label="b")

    inputs = {"a": a_buf.stage, "b": load_rhs}

    def collect(download: bool) -> ProgramResult:
        solutions: list = [None] * len(shapes)
        if download:
            # factors + every solution group live in one allocation:
            # one packed D2H transfer brings the whole arena back
            arena.account_download(
                a_buf.nbytes + sum(rb.nbytes for rb, _ in rhs_bufs))
            for rbuf, idxs in rhs_bufs:
                xs = rbuf.download(account=False)
                for i, x in zip(idxs, xs):
                    solutions[i] = x
        return ProgramResult(
            factors=a_buf.download(account=False) if download else None,
            ipiv=[ip.copy() for ip in pivots.ipiv],
            info=pivots.info.copy(),
            n_replaced=ctrl.n_replaced.copy(),
            min_pivot=ctrl.min_pivot.copy(),
            growth=ctrl.growth.copy(),
            solutions=solutions)

    prog = WorkloadProgram(device, "factor_solve", signature, steps,
                           inputs=inputs, optional=set(), collect=collect,
                           buffers=[arena], engine=eng, arena=arena)
    prog.factor_batch = a_buf.batch

    def verifier() -> int | None:
        bad = _program_factor_check(a_buf.batch.matrix,
                                    a_buf.staged_matrix, pivots,
                                    len(shapes), dt)
        if bad is not None:
            return bad
        for rbuf, idxs in rhs_bufs:
            pos = {i: p for p, i in enumerate(idxs)}
            bad = _program_solve_check(
                a_buf.staged_matrix,
                lambda i, rb=rbuf, pp=pos: rb.staged_matrix(pp[i]),
                lambda i, rb=rbuf, pp=pos: rb.batch.matrix(pp[i]),
                pivots, idxs, dt)
            if bad is not None:
                return bad
        return None

    prog._verifier = verifier
    return prog


# -- trsm / gemm -------------------------------------------------------
def _compile_trsm(device, shapes, rhs_shapes, dt, op_kwargs, eng, fuse,
                  fuse_window) -> WorkloadProgram:
    shapes = _check_shapes(shapes, "trsm")
    if rhs_shapes is None:
        raise CompileError("trsm compilation requires rhs_shapes")
    rhs_shapes = _check_shapes(rhs_shapes, "trsm rhs")
    if len(rhs_shapes) != len(shapes):
        raise CompileError("trsm needs one rhs shape per matrix")
    side = op_kwargs.pop("side", "L")
    uplo = op_kwargs.pop("uplo", "L")
    transa = op_kwargs.pop("transa", "N")
    diag = op_kwargs.pop("diag", "N")
    alpha = op_kwargs.pop("alpha", 1.0)
    if op_kwargs:
        raise CompileError(f"unknown trsm options {sorted(op_kwargs)}")
    m_req = max((m for (m, _n) in rhs_shapes), default=0)
    n_req = max((n for (_m, n) in rhs_shapes), default=0)
    signature = ("trsm", dt.str, tuple(shapes), tuple(rhs_shapes),
                 (side, uplo, transa, diag, float(np.real(alpha)),
                  float(np.imag(alpha))))

    arena = _Arena(device, dt,
                   sum(m * n for (m, n) in rhs_shapes)
                   + sum(m * n for (m, n) in shapes))
    b_buf = _PackedBuffer(device, rhs_shapes, dt, arena=arena)
    a_buf = _PackedBuffer(device, shapes, dt, arena=arena)
    a_buf.load([_synthetic_lu(m, n, dt) for (m, n) in shapes],
               label="compile")
    b_buf.load([np.ones(s, dtype=dt) for s in rhs_shapes], label="compile")
    rec = _Recorder(device)
    with rec:
        irr_trsm(device, side, uplo, transa, diag, m_req, n_req, alpha,
                 a_buf.batch, (0, 0), b_buf.batch, (0, 0), engine=eng)
    steps = _maybe_fuse(list(rec.take()), fuse, fuse_window)
    device.synchronize()

    def collect(download: bool) -> ProgramResult:
        if download:
            arena.account_download(b_buf.nbytes)
        return ProgramResult(
            solutions=b_buf.download(account=False) if download else None)

    return WorkloadProgram(device, "trsm", signature, steps,
                           inputs={"a": a_buf.stage, "b": b_buf.stage},
                           optional=set(), collect=collect,
                           buffers=[arena], engine=eng, arena=arena)


def _compile_gemm(device, shapes, dt, op_kwargs, eng, fuse,
                  fuse_window) -> WorkloadProgram:
    triples = []
    for t in shapes:
        sa, sb, sc = t
        triples.append((_check_shapes([sa], "gemm A")[0],
                        _check_shapes([sb], "gemm B")[0],
                        _check_shapes([sc], "gemm C")[0]))
    transa = op_kwargs.pop("transa", "N")
    transb = op_kwargs.pop("transb", "N")
    alpha = op_kwargs.pop("alpha", 1.0)
    beta = op_kwargs.pop("beta", 1.0)
    if op_kwargs:
        raise CompileError(f"unknown gemm options {sorted(op_kwargs)}")
    m_req = max((c[0] for (_a, _b, c) in triples), default=0)
    n_req = max((c[1] for (_a, _b, c) in triples), default=0)
    if transa == "N":
        k_req = max((a[1] for (a, _b, _c) in triples), default=0)
    else:
        k_req = max((a[0] for (a, _b, _c) in triples), default=0)
    signature = ("gemm", dt.str, tuple(triples),
                 (transa, transb, float(np.real(alpha)),
                  float(np.imag(alpha)), float(np.real(beta)),
                  float(np.imag(beta))))

    arena = _Arena(device, dt,
                   sum(t[0][0] * t[0][1] + t[1][0] * t[1][1]
                       + t[2][0] * t[2][1] for t in triples))
    c_buf = _PackedBuffer(device, [t[2] for t in triples], dt, arena=arena)
    a_buf = _PackedBuffer(device, [t[0] for t in triples], dt, arena=arena)
    b_buf = _PackedBuffer(device, [t[1] for t in triples], dt, arena=arena)
    a_buf.load([np.ones(t[0], dtype=dt) for t in triples], label="compile")
    b_buf.load([np.ones(t[1], dtype=dt) for t in triples], label="compile")
    c_buf.load([np.zeros(t[2], dtype=dt) for t in triples],
               label="compile")
    rec = _Recorder(device)
    with rec:
        irr_gemm(device, transa, transb, m_req, n_req, k_req, alpha,
                 a_buf.batch, (0, 0), b_buf.batch, (0, 0), beta,
                 c_buf.batch, (0, 0), engine=eng)
    steps = _maybe_fuse(list(rec.take()), fuse, fuse_window)
    device.synchronize()

    def collect(download: bool) -> ProgramResult:
        if download:
            arena.account_download(c_buf.nbytes)
        return ProgramResult(
            solutions=c_buf.download(account=False) if download else None)

    return WorkloadProgram(device, "gemm", signature, steps,
                           inputs={"a": a_buf.stage, "b": b_buf.stage,
                                   "c": c_buf.stage},
                           optional=set(), collect=collect,
                           buffers=[arena], engine=eng, arena=arena)
