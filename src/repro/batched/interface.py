"""The expanded batch interface — §IV-A of the paper.

A :class:`IrrBatch` bundles what the paper's interface passes as separate
device arrays: the per-matrix buffers (``Aarray`` + ``lda_vec``) and the
*local dimension* vectors (``m_vec``, ``n_vec``).  Routines additionally
take *required dimensions* (scalars, defined by the largest matrix) and
*pointer offsets* (a scalar ``(i, j)`` pair per operand, applied uniformly:
``A[id] = Aarray[id] + Aj·lda_vec[id] + Ai``).

Embedding the offset arithmetic in the interface is the paper's key design
move: a blocked algorithm can descend into submatrices by changing two
scalars per operand, with *no* auxiliary kernels mutating pointer or
dimension arrays between steps, and hence no forced synchronization.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..device.kernel import peak_scale_for
from ..device.memory import DeviceArray
from ..device.simulator import Device

__all__ = ["IrrBatch", "Offsets"]

#: A scalar (row, col) pointer-offset pair, the ``(Ai, Aj)`` of the paper.
Offsets = tuple[int, int]


class IrrBatch:
    """A nonuniform batch of matrices resident on one device.

    Attributes
    ----------
    device:
        The owning :class:`~repro.device.simulator.Device`.
    arrays:
        Per-matrix :class:`DeviceArray` buffers.  ``arrays[i]`` has shape
        ``(lda_vec[i], lcols[i])`` with ``lda_vec[i] >= m_vec[i]`` — the
        leading-dimension generalization of the paper's interface.
    m_vec, n_vec:
        Local dimensions (int64 arrays).  Never mutated by any routine.
    """

    def __init__(self, device: Device, arrays: Sequence[DeviceArray],
                 m_vec: np.ndarray, n_vec: np.ndarray):
        m_vec = np.asarray(m_vec, dtype=np.int64)
        n_vec = np.asarray(n_vec, dtype=np.int64)
        if len(arrays) != len(m_vec) or len(arrays) != len(n_vec):
            raise ValueError("arrays, m_vec and n_vec must have equal length")
        if np.any(m_vec < 0) or np.any(n_vec < 0):
            raise ValueError("local dimensions must be nonnegative")
        for i, a in enumerate(arrays):
            if a.ndim != 2:
                raise ValueError(f"matrix {i} is not 2-D")
            if a.shape[0] < m_vec[i] or a.shape[1] < n_vec[i]:
                raise ValueError(
                    f"matrix {i}: buffer {a.shape} smaller than local dims "
                    f"({m_vec[i]}, {n_vec[i]})")
            if a.device is not device:
                raise ValueError(f"matrix {i} lives on a different device")
        dtypes = {a.dtype for a in arrays}
        if len(dtypes) > 1:
            raise ValueError(f"mixed data types in one batch: {dtypes}")
        dtype = dtypes.pop() if dtypes else np.dtype(np.float64)
        if dtype not in (np.float32, np.float64, np.complex64,
                         np.complex128):
            raise ValueError(f"unsupported data type {dtype}")
        self.device = device
        self.arrays = list(arrays)
        self.m_vec = m_vec
        self.n_vec = n_vec
        self.dtype = np.dtype(dtype)
        self._packed: DeviceArray | None = None

    # -- construction -----------------------------------------------------
    @classmethod
    def from_host(cls, device: Device, matrices: Iterable[np.ndarray],
                  dtype=None) -> "IrrBatch":
        """Upload a list of host matrices (sizes may all differ).

        ``dtype`` selects the device precision (``float32``/``float64``);
        by default float32 inputs stay float32 and everything else is
        promoted to float64.
        """
        def pick(m):
            if dtype is not None:
                return dtype
            kind = np.asarray(m).dtype
            if kind in (np.float32, np.complex64, np.complex128):
                return kind
            return np.float64

        mats = [np.atleast_2d(np.asarray(m, dtype=pick(m)))
                for m in matrices]
        arrays = []
        try:
            for m in mats:
                arrays.append(device.from_host(m))
        except BaseException:
            # a failed upload must not leak its predecessors (fault
            # injection exercises exactly this path)
            for a in arrays:
                a.free()
            raise
        m_vec = np.array([m.shape[0] for m in mats], dtype=np.int64)
        n_vec = np.array([m.shape[1] for m in mats], dtype=np.int64)
        return cls(device, arrays, m_vec, n_vec)

    @classmethod
    def from_host_packed(cls, device: Device,
                         matrices: Iterable[np.ndarray],
                         dtype=None) -> "IrrBatch":
        """Upload a list of host matrices with ONE staged H2D transfer.

        The matrices are flattened into a contiguous staging buffer,
        copied in a single transfer (paying the per-transfer latency
        once instead of once per matrix), and exposed as per-matrix
        *views* into the packed device allocation.  Values — and hence
        every downstream kernel's numerics — are identical to
        :meth:`from_host`; only the transfer schedule differs.  All
        matrices must share one device dtype (pass ``dtype`` to force
        it).
        """
        def pick(m):
            if dtype is not None:
                return dtype
            kind = np.asarray(m).dtype
            if kind in (np.float32, np.complex64, np.complex128):
                return kind
            return np.float64

        mats = [np.atleast_2d(np.asarray(m, dtype=pick(m)))
                for m in matrices]
        dtypes = {m.dtype for m in mats}
        if len(dtypes) > 1:
            raise ValueError(f"packed upload needs one dtype, got {dtypes}")
        dt = dtypes.pop() if dtypes else np.dtype(dtype or np.float64)
        total = sum(m.size for m in mats)
        flat = np.empty(total, dtype=dt)
        offsets = []
        off = 0
        for m in mats:
            flat[off:off + m.size] = m.ravel()
            offsets.append(off)
            off += m.size
        packed = device.from_host(flat)
        try:
            arrays = [DeviceArray(device,
                                  packed.data[o:o + m.size].reshape(m.shape),
                                  base=packed)
                      for o, m in zip(offsets, mats)]
            m_vec = np.array([m.shape[0] for m in mats], dtype=np.int64)
            n_vec = np.array([m.shape[1] for m in mats], dtype=np.int64)
            batch = cls(device, arrays, m_vec, n_vec)
        except BaseException:
            packed.free()
            raise
        batch._packed = packed
        return batch

    @classmethod
    def zeros(cls, device: Device, m_vec, n_vec,
              dtype=np.float64) -> "IrrBatch":
        """Allocate a zero-initialized batch with the given local dims."""
        m_vec = np.asarray(m_vec, dtype=np.int64)
        n_vec = np.asarray(n_vec, dtype=np.int64)
        arrays = [device.zeros((int(m), int(n)), dtype=dtype)
                  for m, n in zip(m_vec, n_vec)]
        return cls(device, arrays, m_vec, n_vec)

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.arrays)

    @property
    def batch_size(self) -> int:
        return len(self.arrays)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def peak_scale(self) -> float:
        """Arithmetic-peak multiplier of this precision relative to FP64
        (the shared :data:`~repro.device.kernel.PEAK_SCALE` table)."""
        return peak_scale_for(self.dtype)

    @property
    def dims_key(self) -> tuple[bytes, bytes]:
        """Hashable signature of the local dimensions.

        ``m_vec``/``n_vec`` are immutable for the life of the batch, so
        the key is computed once and reused by the plan cache in
        :mod:`repro.batched.engine` — two batches with identical local
        dims share every cached inference plan.
        """
        key = getattr(self, "_dims_key", None)
        if key is None:
            key = (self.m_vec.tobytes(), self.n_vec.tobytes())
            self._dims_key = key
        return key

    @property
    def max_m(self) -> int:
        return int(self.m_vec.max()) if len(self.m_vec) else 0

    @property
    def max_n(self) -> int:
        return int(self.n_vec.max()) if len(self.n_vec) else 0

    @property
    def max_min_mn(self) -> int:
        """``max_i min(m_vec[i], n_vec[i])`` — the LU iteration bound
        DCWI requires the algorithm to be written against (§IV-B)."""
        if not len(self.m_vec):
            return 0
        return int(np.minimum(self.m_vec, self.n_vec).max())

    def local_dims(self, i: int) -> tuple[int, int]:
        return int(self.m_vec[i]), int(self.n_vec[i])

    def matrix(self, i: int) -> np.ndarray:
        """Writable view of matrix ``i`` restricted to its local dims."""
        m, n = self.local_dims(i)
        return self.arrays[i].data[:m, :n]

    def sub(self, i: int, oi: int, oj: int, rows: int, cols: int) -> np.ndarray:
        """Writable view of the ``rows × cols`` submatrix of matrix ``i``
        at offset ``(oi, oj)`` — the pointer arithmetic
        ``A + Aj·lda + Ai`` of the expanded interface."""
        return self.arrays[i].data[oi:oi + rows, oj:oj + cols]

    # -- transfers ----------------------------------------------------------
    def to_host(self) -> list[np.ndarray]:
        """Download every matrix (restricted to local dims).

        A batch built by :meth:`from_host_packed` downloads its whole
        packed allocation in one D2H transfer (one latency charge);
        otherwise each matrix is a separate transfer.
        """
        out = []
        if self._packed is not None and not self._packed.freed:
            self.device._account_transfer(self._packed.nbytes)
            for i in range(len(self)):
                m, n = self.local_dims(i)
                out.append(np.array(self.arrays[i].data[:m, :n], copy=True))
            return out
        for i in range(len(self)):
            m, n = self.local_dims(i)
            self.device._account_transfer(self.arrays[i].data[:m, :n].nbytes)
            out.append(np.array(self.arrays[i].data[:m, :n], copy=True))
        return out

    def copy(self) -> "IrrBatch":
        """Deep copy on the same device (new allocations)."""
        arrays = [self.device.from_host(a.data) for a in self.arrays]
        return IrrBatch(self.device, arrays, self.m_vec.copy(),
                        self.n_vec.copy())

    def total_elements(self) -> int:
        return int(np.sum(self.m_vec * self.n_vec))

    def free(self) -> None:
        """Release every owned member allocation (idempotent; members
        that are views never owned bytes, so freeing them is a no-op).
        A packed batch releases its single backing allocation."""
        for a in self.arrays:
            a.free()
        if self._packed is not None:
            self._packed.free()

    def __enter__(self) -> "IrrBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"IrrBatch(batch={len(self)}, "
                f"m in [{self.m_vec.min() if len(self) else 0}, {self.max_m}], "
                f"n in [{self.n_vec.min() if len(self) else 0}, {self.max_n}])")
