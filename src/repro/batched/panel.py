"""Block-column (panel) factorization — §IV-E.

Two code paths, chosen by shared-memory capacity exactly as in the paper:

* :func:`fused_getf2` (``irrGETF2``) — one kernel factors every matrix's
  whole panel in shared memory.  Eligible when the *estimated largest
  panel*, ``ib × (M_max − j)`` doubles, fits in a thread block's shared
  memory; a GPU with a small shared memory (MI100, 64 KB) falls back to
  the column-wise path earlier than one with a large shared memory
  (A100, 192 KB).  Its advantage is memory traffic: the panel is read and
  written once.

* :func:`columnwise_getf2` — the four-kernel-per-column path
  (``irrIAMAX``, ``irrSWAP``, ``irrSCAL``, ``irrGER``), used when the
  panel cannot be cached.  The rank-1 update re-touches the trailing
  panel from global memory every column, so traffic grows by a factor of
  the panel width.

Per-matrix semantics (DCWI): at global column ``j`` with nominal width
``ib``, matrix ``i`` factors the rectangular block
``A_i[j:m_i, j:min(j+ib, n_i)]`` with partial pivoting restricted to its
first ``p_i = min(ib, min(m_i, n_i) − j)`` columns (its remaining pivot
columns).  Making the panel span the full nominal width (not just the
pivot columns) means a wide matrix whose last pivot column falls inside
this panel has its extra U columns updated here, and the driver's
uniform-offset TRSM/GEMM stay correct for every matrix shape.
"""

from __future__ import annotations

import numpy as np

from ..device.kernel import KernelCost
from ..device.simulator import Device
from ..errors import InfeasibleConfig
from .interface import IrrBatch

__all__ = ["fused_getf2", "columnwise_getf2", "panel_shared_bytes",
           "PanelPivots", "PivotControl", "factor_panel_block",
           "DEFAULT_REPLACE_SCALE", "default_replace_scale"]

_ITEM = 8

#: default static-pivot replacement magnitude, as a multiple of
#: ``max|A_i|``: ``sqrt(eps)`` keeps ``1/pivot`` bounded by
#: ``eps^{-1/2}/‖A‖`` so iterative refinement can absorb the
#: ``O(sqrt(eps)·‖A‖)`` perturbation (the STRUMPACK recipe).  This is
#: the FP64 value; ``PivotControl`` resolves the default against the
#: *working* precision's eps, so FP32/complex64 factorizations replace
#: pivots at ``sqrt(eps32) ≈ 3.5e-4`` instead of an FP64-sized value
#: their arithmetic could never distinguish from zero.
DEFAULT_REPLACE_SCALE = float(np.sqrt(np.finfo(np.float64).eps))


def default_replace_scale(dtype=np.float64) -> float:
    """``sqrt(eps)`` of the working precision (eps of the real kind for
    complex dtypes — ``np.finfo(complex64).eps`` is the float32 eps)."""
    return float(np.sqrt(np.finfo(np.dtype(dtype)).eps))


class PivotControl:
    """Per-matrix breakdown thresholds, replacement values and diagnostics.

    A pivot of matrix ``i`` breaks down when ``|pivot| < thresh[i]``,
    where ``thresh[i] = max(tiny, pivot_tol · anorm[i])`` and
    ``anorm[i] = max|A_i|`` at construction (``tiny`` is the smallest
    normal number of the dtype, so exactly-zero *and* subnormal pivots
    are always flagged — dividing by them overflows).  In static-pivot
    mode a broken pivot is replaced by ``±replace_scale · anorm[i]``
    (keeping the original sign/phase) and counted in ``n_replaced``
    instead of being reported in ``info``.

    Diagnostics, all per matrix: ``n_replaced`` (pivots perturbed),
    ``min_pivot`` (smallest ``|pivot|`` encountered, ``+inf`` until a
    pivot column is processed) and ``growth`` (element growth factor
    ``max|U,L| / max|A|``, filled by the driver after the factorization).
    """

    def __init__(self, anorm: np.ndarray, dtype=np.float64, *,
                 pivot_tol: float = 0.0, static_pivot: bool = False,
                 replace_scale: float | None = None):
        if pivot_tol < 0.0:
            raise ValueError("pivot_tol must be >= 0")
        if replace_scale is None:
            replace_scale = default_replace_scale(dtype)
        if replace_scale <= 0.0:
            raise ValueError("replace_scale must be > 0")
        real = np.finfo(np.dtype(dtype))
        bs = len(anorm)
        self.pivot_tol = float(pivot_tol)
        self.static_pivot = bool(static_pivot)
        self.replace_scale = float(replace_scale)
        self.anorm = np.asarray(anorm, dtype=np.float64)
        self.thresh = np.maximum(float(real.tiny),
                                 self.pivot_tol * self.anorm)
        # repl[i] == 0.0 disables replacement for matrix i (always when
        # static pivoting is off; also for an exactly-zero matrix, whose
        # breakdown is not recoverable by scaling its norm).
        if static_pivot:
            self.repl = np.where(self.anorm > 0.0,
                                 self.replace_scale * self.anorm, 0.0)
        else:
            self.repl = np.zeros(bs, dtype=np.float64)
        self.n_replaced = np.zeros(bs, dtype=np.int64)
        self.min_pivot = np.full(bs, np.inf, dtype=np.float64)
        self.growth = np.ones(bs, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.anorm)


def _batch_abs_max(batch: IrrBatch) -> np.ndarray:
    """``max|A_i|`` over each matrix's local dims (0.0 for empty)."""
    out = np.zeros(len(batch), dtype=np.float64)
    for i in range(len(batch)):
        mat = batch.matrix(i)
        if mat.size:
            out[i] = float(np.max(np.abs(mat)))
    return out


class PanelPivots:
    """Per-matrix pivot vectors for an LU factorization.

    ``ipiv[i][r] = p`` means row ``r`` was interchanged with row ``p >= r``
    (0-based LAPACK convention).  Also records ``info`` per matrix: the
    1-based index of the first *unrecovered* pivot breakdown
    (0 = nonsingular), matching LAPACK ``getrf`` semantics.  Breakdown
    thresholds and static-pivot replacement are governed by the attached
    :class:`PivotControl` (``self.ctrl``); with the default arguments the
    threshold is the smallest normal number of the dtype, so exact zeros
    and subnormal pivots are flagged and nothing is replaced.
    """

    def __init__(self, batch: IrrBatch, *, pivot_tol: float = 0.0,
                 static_pivot: bool = False,
                 replace_scale: float | None = None):
        self.ipiv = [np.arange(min(int(m), int(n)), dtype=np.int64)
                     for m, n in zip(batch.m_vec, batch.n_vec)]
        self.ctrl = PivotControl(
            _batch_abs_max(batch), batch.dtype, pivot_tol=pivot_tol,
            static_pivot=static_pivot, replace_scale=replace_scale)
        self.info = np.zeros(len(batch), dtype=np.int64)

    @property
    def n_replaced(self) -> np.ndarray:
        """Per-matrix count of statically replaced (perturbed) pivots."""
        return self.ctrl.n_replaced

    @property
    def min_pivot(self) -> np.ndarray:
        """Per-matrix smallest ``|pivot|`` seen during elimination."""
        return self.ctrl.min_pivot

    @property
    def growth(self) -> np.ndarray:
        """Per-matrix element growth factor ``max|LU| / max|A|``."""
        return self.ctrl.growth

    def __len__(self) -> int:
        return len(self.ipiv)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.ipiv[i]


def panel_shared_bytes(max_m: int, j: int, ib: int,
                       itemsize: int = _ITEM) -> int:
    """Paper's shared-memory estimate for the largest panel at step ``j``:
    all panels assumed ``ib`` wide, tallest is ``M_max − j`` rows."""
    return max(0, (int(max_m) - int(j))) * int(ib) * int(itemsize)


def _panel_extents(batch: IrrBatch, i: int, j: int, ib: int
                   ) -> tuple[int, int, int]:
    """(rows, panel width, pivot columns) of matrix ``i`` at step ``j``."""
    m, n = batch.local_dims(i)
    k = min(m, n)
    rows = max(0, m - j)
    width = max(0, min(j + ib, n) - j)
    pivots = max(0, min(ib, k - j))
    return rows, width, pivots


def factor_panel_block(a: np.ndarray, npiv: int, ipiv_out: np.ndarray,
                       info: np.ndarray, idx: int, j: int,
                       ctrl: PivotControl | None = None) -> float:
    """Unblocked right-looking LU of one panel block, in place.

    ``a`` is the ``rows × width`` panel view; pivoting happens in the first
    ``npiv`` columns but each rank-1 update spans the full panel width.
    Returns the flop count.  Shared by both code paths (they differ in
    launch structure and traffic, not in numerics).

    A pivot with ``|pivot| < thresh`` is a breakdown: with ``ctrl`` in
    static-pivot mode it is replaced by ``±repl`` (same sign/phase) and
    counted, otherwise ``info[idx]`` records the 1-based column and the
    column's scaling/update are skipped (dividing by a subnormal pivot
    would overflow).  Without ``ctrl`` the threshold is the smallest
    normal number of the dtype and nothing is replaced.
    """
    rows, width = a.shape
    if ctrl is not None:
        thresh = float(ctrl.thresh[idx])
        repl = float(ctrl.repl[idx])
    else:
        thresh = float(np.finfo(a.dtype).tiny)
        repl = 0.0
    flops = 0.0
    for c in range(npiv):
        col = a[c:, c]
        p = int(np.argmax(np.abs(col)))
        piv = col[p]
        # the ufunc, not builtin abs(): complex magnitudes must match
        # the vectorized engine paths bitwise
        apiv = float(np.abs(piv))
        ipiv_out[j + c] = j + c + p
        if p != 0:
            a[[c, c + p], :] = a[[c + p, c], :]
        if ctrl is not None and apiv < ctrl.min_pivot[idx]:
            ctrl.min_pivot[idx] = apiv
        if apiv < thresh:
            if repl > 0.0:
                # keep the sign/phase of the (possibly zero) tiny pivot
                piv = piv / apiv * repl if apiv > 0.0 else \
                    a.dtype.type(1.0) * repl
                a[c, c] = piv
                ctrl.n_replaced[idx] += 1
            else:
                if info[idx] == 0:
                    info[idx] = j + c + 1  # 1-based, like LAPACK
                continue
        if c + 1 < rows:
            a[c + 1:, c] /= a[c, c]
            flops += rows - c - 1
            if c + 1 < width:
                a[c + 1:, c + 1:] -= np.outer(a[c + 1:, c], a[c, c + 1:])
                flops += 2.0 * (rows - c - 1) * (width - c - 1)
    return flops


def fused_getf2(device: Device, batch: IrrBatch, pivots: PanelPivots,
                j: int, ib: int, *, stream=None,
                name: str = "irrgetf2", engine=None) -> KernelCost:
    """One launch factoring every matrix's panel in shared memory.

    ``engine`` selects the host execution path of the launch body: the
    bucketed engine groups matrices by inferred panel shape, routing
    uniform small groups through the interleaved-layout elimination core
    and the rest through one zero-padded vectorized elimination —
    bitwise-identical factors, pivots and cost.
    """
    smem = panel_shared_bytes(batch.max_m, j, ib, batch.itemsize)
    if smem > device.spec.max_shared_per_block:
        raise InfeasibleConfig(
            f"panel of {smem} B does not fit in shared memory "
            f"({device.spec.max_shared_per_block} B) — use columnwise_getf2")

    from .engine import resolve_engine  # deferred: engine imports panel
    eng = resolve_engine(engine)

    def kernel() -> KernelCost:
        if eng is not None:
            return eng.exec_panel(device, batch, pivots, j, ib, smem)
        flops = 0.0
        nbytes = 0.0
        blocks = 0
        for i in range(len(batch)):
            rows, width, npiv = _panel_extents(batch, i, j, ib)
            if npiv == 0:
                continue
            a = batch.sub(i, j, j, rows, width)
            flops += factor_panel_block(a, npiv, pivots.ipiv[i],
                                        pivots.info, i, j,
                                        ctrl=pivots.ctrl)
            nbytes += rows * width * batch.itemsize  # read + write once
            blocks += 1
        return KernelCost(
            flops=flops, bytes_read=nbytes, bytes_written=nbytes,
            blocks=max(blocks, 1), threads_per_block=256,
            shared_mem_per_block=smem, kernel_class="getf2",
            compute_ramp=min(1.0, ib / 16.0),
            peak_scale=batch.peak_scale,
        )

    # Corrupt fault site: the fused panel has no per-launch checksum
    # (its pivot decisions entangle values and control flow); corruption
    # here is caught by the driver-level factor check in irr_getrf.
    def _outputs():
        outs = []
        for i in range(len(batch)):
            rows, width, npiv = _panel_extents(batch, i, j, ib)
            if npiv:
                outs.append(batch.sub(i, j, j, rows, width))
        return outs

    return device.launch(name, kernel, stream=stream, outputs=_outputs)


def columnwise_getf2(device: Device, batch: IrrBatch, pivots: PanelPivots,
                     j: int, ib: int, *, stream=None,
                     name: str = "irrpanel") -> None:
    """Four launches per column: irrIAMAX, irrSWAP, irrSCAL, irrGER.

    Numerically identical to :func:`fused_getf2`; the cost difference is
    4·ib kernel launches and the rank-1 update's repeated global-memory
    traffic over the trailing panel.
    """
    # Per-launch state shared across the column loop: the pivot row found
    # by irrIAMAX, consumed by irrSWAP/irrSCAL/irrGER (device-resident in
    # the real code; plain arrays here).
    bs = len(batch)
    ext = [_panel_extents(batch, i, j, ib) for i in range(bs)]
    piv_row = np.zeros(bs, dtype=np.int64)
    # Breakdown state shared between irrSCAL (which judges the pivot
    # against the threshold, replacing or flagging it) and irrGER (which
    # must skip the rank-1 update of a column whose pivot broke down
    # un-recovered) — device-resident in the real code.
    col_ok = np.zeros(bs, dtype=bool)
    ctrl = pivots.ctrl

    for c in range(ib):
        def iamax(c=c) -> KernelCost:
            nbytes = 0.0
            blocks = 0
            for i in range(bs):
                rows, width, npiv = ext[i]
                if c >= npiv:
                    continue
                col = batch.sub(i, j + c, j + c, rows - c, 1)
                piv_row[i] = int(np.argmax(np.abs(col[:, 0])))
                pivots.ipiv[i][j + c] = j + c + piv_row[i]
                nbytes += (rows - c) * batch.itemsize
                blocks += 1
            return KernelCost(bytes_read=nbytes, blocks=max(blocks, 1),
                              threads_per_block=128, kernel_class="swap")

        def swap(c=c) -> KernelCost:
            nbytes = 0.0
            blocks = 0
            for i in range(bs):
                rows, width, npiv = ext[i]
                if c >= npiv or piv_row[i] == 0:
                    continue
                a = batch.sub(i, j, j, rows, width)
                a[[c, c + piv_row[i]], :] = a[[c + piv_row[i], c], :]
                nbytes += 2 * width * batch.itemsize
                blocks += 1
            return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                              blocks=max(blocks, 1), threads_per_block=64,
                              kernel_class="swap", memory_ramp=0.15)

        def scal(c=c) -> KernelCost:
            flops = 0.0
            nbytes = 0.0
            blocks = 0
            for i in range(bs):
                rows, width, npiv = ext[i]
                col_ok[i] = False
                if c >= npiv:
                    continue
                a = batch.sub(i, j, j, rows, width)
                piv = a[c, c]
                apiv = float(np.abs(piv))
                if apiv < ctrl.min_pivot[i]:
                    ctrl.min_pivot[i] = apiv
                if apiv < ctrl.thresh[i]:
                    repl = float(ctrl.repl[i])
                    if repl > 0.0:
                        piv = piv / apiv * repl if apiv > 0.0 else \
                            batch.dtype.type(1.0) * repl
                        a[c, c] = piv
                        ctrl.n_replaced[i] += 1
                    else:
                        if pivots.info[i] == 0:
                            pivots.info[i] = j + c + 1
                        continue
                col_ok[i] = True
                if c + 1 < rows:
                    a[c + 1:, c] /= piv
                    flops += rows - c - 1
                    nbytes += 2 * (rows - c - 1) * batch.itemsize
                    blocks += 1
            return KernelCost(flops=flops, bytes_read=nbytes / 2,
                              bytes_written=nbytes / 2,
                              blocks=max(blocks, 1), threads_per_block=128,
                              kernel_class="swap")

        def ger(c=c) -> KernelCost:
            flops = 0.0
            nbytes = 0.0
            blocks = 0
            for i in range(bs):
                rows, width, npiv = ext[i]
                if c >= npiv:
                    continue
                if not col_ok[i]:
                    continue
                a = batch.sub(i, j, j, rows, width)
                if c + 1 < rows and c + 1 < width:
                    a[c + 1:, c + 1:] -= np.outer(a[c + 1:, c], a[c, c + 1:])
                    tr = (rows - c - 1) * (width - c - 1)
                    flops += 2.0 * tr
                    # The trailing panel is re-touched every column, but a
                    # <=32-wide panel is mostly L2-resident between the
                    # per-column kernels; charge the DRAM-visible fraction.
                    nbytes += 2 * tr * batch.itemsize * 0.3
                    blocks += max(1, -(-(width - c - 1) // 32))
            return KernelCost(flops=flops, bytes_read=nbytes / 2,
                              bytes_written=nbytes / 2,
                              blocks=max(blocks, 1), threads_per_block=128,
                              kernel_class="getf2")

        device.launch(f"{name}:iamax", iamax, stream=stream)
        device.launch(f"{name}:swap", swap, stream=stream)
        device.launch(f"{name}:scal", scal, stream=stream)
        device.launch(f"{name}:ger", ger, stream=stream)
