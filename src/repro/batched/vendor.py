"""Vendor-library execution models: cuBLAS GEMM and cuSOLVER getrf.

These are the comparators the paper measures against:

* :func:`vendor_gemm` — a single-matrix GEMM at vendor-library efficiency
  (``gemm_vendor`` class: higher asymptote than the generic irrGEMM,
  which is why Fig 14 hybridizes to "cuBLAS in a loop" for fronts
  > 256).
* :func:`vendor_trsm` — single-matrix triangular solve.
* :func:`vendor_getrf` — a single-matrix LU with the launch structure of
  a library solver: per 64-column panel, a panel kernel, a pivot-swap
  kernel, a TRSM and a GEMM.  Calling this per matrix across parallel
  streams is the paper's "cuSOLVER/rocSOLVER called within 16 concurrent
  GPU streams" baseline (Figs 10/11): each call is a *sequence* of
  launches serialized through the host, and each kernel occupies few SMs.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..device.kernel import KernelCost, gemm_compute_ramp
from ..device.memory import DeviceArray
from ..device.simulator import Device
from .panel import factor_panel_block

__all__ = ["vendor_gemm", "vendor_trsm", "vendor_getrf", "VENDOR_PANEL_NB"]

_ITEM = 8
VENDOR_PANEL_NB = 64


def vendor_gemm(device: Device, transa: str, transb: str, alpha: float,
                a: np.ndarray, b: np.ndarray, beta: float, c: np.ndarray,
                *, stream=None, name: str = "cublas_gemm") -> KernelCost:
    """One cuBLAS-style GEMM launch: ``C ← α·op(A)·op(B) + β·C``."""
    opa = a.T if transa == "T" else a
    opb = b.T if transb == "T" else b
    m, k = opa.shape
    k2, n = opb.shape
    if k != k2 or c.shape != (m, n):
        raise ValueError(
            f"gemm shape mismatch: op(A) {opa.shape}, op(B) {opb.shape}, "
            f"C {c.shape}")

    def kernel() -> KernelCost:
        if beta == 0.0:
            c[...] = alpha * (opa @ opb)
        else:
            c[...] = alpha * (opa @ opb) + beta * c
        blocks = max(1, -(-m // 64)) * max(1, -(-n // 64))
        return KernelCost(
            flops=2.0 * m * n * k,
            bytes_read=(m * k + k * n + (m * n if beta else 0)) * _ITEM,
            bytes_written=m * n * _ITEM,
            blocks=blocks, threads_per_block=256,
            shared_mem_per_block=min(2 * 64 * 64 * _ITEM,
                                     device.spec.max_shared_per_block),
            kernel_class="gemm_vendor",
            compute_ramp=gemm_compute_ramp(m, n, k),
        )

    return device.launch(name, kernel, stream=stream)


def vendor_trsm(device: Device, side: str, uplo: str, trans: str, diag: str,
                alpha: float, t: np.ndarray, b: np.ndarray, *,
                stream=None, name: str = "cublas_trsm") -> KernelCost:
    """One cuBLAS-style TRSM launch, in place in ``b``."""
    lower = (uplo == "L") != (trans == "T")
    tt = t.T if trans == "T" else t
    unit = diag == "U"

    def kernel() -> KernelCost:
        if side == "L":
            b[...] = sla.solve_triangular(tt, alpha * b, lower=lower,
                                          unit_diagonal=unit,
                                          check_finite=False)
            order, nrhs = b.shape
        else:
            x = sla.solve_triangular(tt.T, alpha * b.T, lower=not lower,
                                     unit_diagonal=unit, check_finite=False)
            b[...] = x.T
            nrhs, order = b.shape
        return KernelCost(
            flops=float(order) * order * nrhs,
            bytes_read=(order * order / 2 + b.size) * _ITEM,
            bytes_written=b.size * _ITEM,
            blocks=max(1, -(-nrhs // 64)), threads_per_block=256,
            kernel_class="solver_vendor",
            compute_ramp=gemm_compute_ramp(order, nrhs, order),
        )

    return device.launch(name, kernel, stream=stream)


def vendor_getrf(device: Device, a: DeviceArray | np.ndarray, *,
                 stream=None, nb: int = VENDOR_PANEL_NB,
                 info_out: np.ndarray | None = None,
                 name: str = "cusolver_getrf") -> np.ndarray:
    """Single-matrix LU with a library solver's launch structure.

    Factors ``a`` in place (packed L/U) and returns the pivot vector.
    Issues the kernel sequence a real cuSOLVER ``getrf`` performs: for
    each panel — a (narrow, low-occupancy) panel kernel, a row-swap
    kernel, a TRSM on the panel's U block and a trailing GEMM.

    ``info_out`` (a length-1 int64 array) receives the LAPACK-style
    status — the 1-based column of the first pivot breakdown (0 = clean)
    — mirroring cuSOLVER's ``devInfo`` output parameter.
    """
    data = a.data if isinstance(a, DeviceArray) else a
    m, n = data.shape
    k = min(m, n)
    ipiv = np.arange(k, dtype=np.int64)
    info = info_out if info_out is not None else np.zeros(1, dtype=np.int64)

    for j in range(0, k, nb):
        ib = min(nb, k - j)

        def panel(j=j, ib=ib) -> KernelCost:
            rows = m - j
            width = min(j + ib, n) - j
            flops = factor_panel_block(data[j:, j:j + width], ib, ipiv,
                                       info, 0, j)
            return KernelCost(
                flops=flops, bytes_read=rows * width * _ITEM * ib / 4,
                bytes_written=rows * width * _ITEM,
                blocks=max(1, -(-rows // 512)), threads_per_block=512,
                kernel_class="getf2", compute_ramp=min(1.0, ib / 32.0))

        device.launch(f"{name}:panel", panel, stream=stream)

        def swaps(j=j, ib=ib) -> KernelCost:
            nbytes = 0.0
            for r in range(j, min(j + ib, k)):
                p = int(ipiv[r])
                if p != r:
                    if j > 0:
                        data[[r, p], :j] = data[[p, r], :j]
                    if n > j + ib:
                        data[[r, p], j + ib:] = data[[p, r], j + ib:]
                    nbytes += 2 * (n - ib) * _ITEM
            return KernelCost(bytes_read=nbytes, bytes_written=nbytes,
                              blocks=max(1, -(-n // 256)),
                              threads_per_block=256, kernel_class="swap",
                              memory_ramp=0.3)

        device.launch(f"{name}:laswp", swaps, stream=stream)

        if n > j + ib:
            vendor_trsm(device, "L", "L", "N", "U", 1.0,
                        data[j:j + ib, j:j + ib], data[j:j + ib, j + ib:],
                        stream=stream, name=f"{name}:trsm")
            if m > j + ib:
                vendor_gemm(device, "N", "N", -1.0,
                            data[j + ib:, j:j + ib], data[j:j + ib, j + ib:],
                            1.0, data[j + ib:, j + ib:],
                            stream=stream, name=f"{name}:gemm")
    return ipiv
