"""Distribution-aware auto-tuning for irregular batches (§VI).

The paper's conclusion flags auto-tuning as an open problem: "most of the
tuning techniques that we are aware of take the problem size as an input
... In the case of irrLU-GPU ... we have a mix of sizes that are known
only at run time.  It is certainly a research direction to find robust
auto-tuning techniques based on the distributions of sizes in a single
batch."

This module implements the natural first answer: *measure a sketch of the
batch*.  The size distribution is summarized (it is known at run time —
the local-dimension vectors are on the host), a small random sub-batch is
sampled per candidate configuration, and the candidate with the best
modeled throughput wins.  Because the sub-batch preserves the size
distribution, the winner transfers to the full batch; the sampling cost
is a few percent of one full factorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.simulator import Device
from ..device.spec import DeviceSpec
from .getrf import irr_getrf
from .interface import IrrBatch

__all__ = ["autotune_getrf", "TuningResult", "size_distribution_summary"]

#: candidate grid: the §IV-E design parameter plus the §IV-F/§VI variants
_CANDIDATES = [
    {"nb": nb, "laswp_variant": lv, "concurrent_swaps": cs}
    for nb in (8, 16, 32, 64)
    for lv in ("rehearsed", "looped")
    for cs in (False, True)
]


@dataclass
class TuningResult:
    """The chosen configuration and the full candidate table."""

    best: dict
    trials: list[tuple[dict, float]] = field(default_factory=list)
    sample_size: int = 0

    def speedup_over_worst(self) -> float:
        times = [t for _, t in self.trials]
        return max(times) / min(times) if times else 1.0


def size_distribution_summary(m_vec, n_vec) -> dict:
    """The run-time size statistics the tuner keys on."""
    k = np.minimum(np.asarray(m_vec), np.asarray(n_vec))
    if len(k) == 0:
        return {"count": 0, "min": 0, "median": 0, "max": 0, "spread": 0.0}
    return {
        "count": int(len(k)),
        "min": int(k.min()),
        "median": float(np.median(k)),
        "max": int(k.max()),
        #: irregularity measure: interquartile range over the median
        "spread": float((np.percentile(k, 75) - np.percentile(k, 25)) /
                        max(np.median(k), 1.0)),
    }


def autotune_getrf(spec: DeviceSpec, matrices: list[np.ndarray], *,
                   sample_size: int = 24, seed: int = 0,
                   candidates: list[dict] | None = None) -> TuningResult:
    """Pick irrLU parameters for this batch's size distribution.

    Runs each candidate configuration on a sampled sub-batch on a *fresh*
    simulated device (so trials don't perturb the caller's device state)
    and returns the fastest.  ``matrices`` are host matrices; the
    factorization trials work on copies.
    """
    if not matrices:
        return TuningResult(best=dict(_CANDIDATES[0]), trials=[])
    rng = np.random.default_rng(seed)
    n_samp = min(sample_size, len(matrices))
    idx = rng.choice(len(matrices), size=n_samp, replace=False)
    sample = [matrices[i] for i in idx]

    trials: list[tuple[dict, float]] = []
    for cand in (candidates or _CANDIDATES):
        dev = Device(spec)
        batch = IrrBatch.from_host(dev, [m.copy() for m in sample])
        try:
            with dev.timed_region() as t:
                irr_getrf(dev, batch, **cand)
        except ValueError:
            continue  # infeasible candidate (e.g. forced fused panel)
        trials.append((dict(cand), t["elapsed"]))

    trials.sort(key=lambda kv: kv[1])
    return TuningResult(best=trials[0][0], trials=trials,
                        sample_size=n_samp)
