"""Distribution-aware auto-tuning for irregular batches (§VI).

The paper's conclusion flags auto-tuning as an open problem: "most of the
tuning techniques that we are aware of take the problem size as an input
... In the case of irrLU-GPU ... we have a mix of sizes that are known
only at run time.  It is certainly a research direction to find robust
auto-tuning techniques based on the distributions of sizes in a single
batch."

This module implements the natural first answer: *measure a sketch of the
batch*.  The size distribution is summarized (it is known at run time —
the local-dimension vectors are on the host), a small random sub-batch is
sampled per candidate configuration, and the candidate with the best
modeled throughput wins.  Because the sub-batch preserves the size
distribution, the winner transfers to the full batch; the sampling cost
is a few percent of one full factorization.

Two failure-handling rules keep the tuner honest:

* A candidate that violates a hard device limit raises
  :class:`~repro.errors.InfeasibleConfig` and is *skipped* (recorded in
  :attr:`TuningResult.infeasible`).  Any other :class:`ValueError` is an
  argument bug — in the candidate grid or in the batch itself — and
  propagates instead of being silently swallowed as "infeasible".
* When **every** candidate is infeasible the tuner degrades, it does not
  crash: the result carries the default configuration, an empty trial
  table and ``exhausted=True``, so a caller can fall back to the kernel
  defaults (which self-select a feasible path at run time).

The same sampled-trial machinery generalizes beyond one batch: the online
autotuner (:mod:`repro.serve.autotune`) feeds *observed traffic*
size-distribution summaries (from
:meth:`~repro.serve.stats.ServiceStats.order_summary`) through
:func:`autotune_getrf` via synthetic representative batches — see
:func:`representative_orders`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..device.simulator import Device
from ..device.spec import DeviceSpec
from ..errors import InfeasibleConfig
from .getrf import irr_getrf
from .interface import IrrBatch

__all__ = ["autotune_getrf", "TuningResult", "size_distribution_summary",
           "representative_orders"]

#: candidate grid: the §IV-E design parameter plus the §IV-F/§VI variants
_CANDIDATES = [
    {"nb": nb, "laswp_variant": lv, "concurrent_swaps": cs}
    for nb in (8, 16, 32, 64)
    for lv in ("rehearsed", "looped")
    for cs in (False, True)
]

#: the configuration a degraded tuner falls back to — the kernel defaults
#: (every knob self-selects a feasible path at run time).
_DEFAULT = {"nb": "auto", "laswp_variant": "rehearsed",
            "concurrent_swaps": False}


@dataclass
class TuningResult:
    """The chosen configuration and the full candidate table.

    ``exhausted`` marks a degraded result: every candidate was
    infeasible on this device/batch, so :attr:`best` is the default
    configuration and :attr:`trials` is empty.  ``infeasible`` lists the
    skipped candidates either way.
    """

    best: dict
    trials: list[tuple[dict, float]] = field(default_factory=list)
    sample_size: int = 0
    infeasible: list[dict] = field(default_factory=list)
    exhausted: bool = False

    def speedup_over_worst(self) -> float:
        times = [t for _, t in self.trials]
        return max(times) / min(times) if times else 1.0


def size_distribution_summary(m_vec, n_vec) -> dict:
    """The run-time size statistics the tuner keys on."""
    k = np.minimum(np.asarray(m_vec), np.asarray(n_vec))
    if len(k) == 0:
        return {"count": 0, "min": 0, "median": 0, "max": 0, "spread": 0.0}
    return {
        "count": int(len(k)),
        "min": int(k.min()),
        "median": float(np.median(k)),
        "max": int(k.max()),
        #: irregularity measure: interquartile range over the median
        "spread": float((np.percentile(k, 75) - np.percentile(k, 25)) /
                        max(np.median(k), 1.0)),
    }


def representative_orders(summary: dict, count: int = 12,
                          seed: int = 0) -> list[int]:
    """Synthesize a batch of orders matching a size-distribution summary.

    The inverse of :func:`size_distribution_summary`, coarse by design:
    a log-triangular draw spanning ``[min, max]`` peaked at the median
    reproduces the summary's location and spread well enough for
    relative candidate ranking, which is all a tuner trial needs.  Used
    by the online autotuner to replay *observed traffic* shapes through
    the sampled-trial machinery without retaining request payloads.
    """
    lo = max(int(summary.get("min", 0)), 1)
    hi = max(int(summary.get("max", 0)), lo)
    med = min(max(float(summary.get("median", lo)) or lo, lo), hi)
    if hi == lo:
        return [lo] * count
    rng = np.random.default_rng(seed)
    draws = rng.triangular(np.log(lo), np.log(med) if med > lo
                           else np.log(lo), np.log(hi), size=count)
    return [int(round(x)) for x in np.exp(draws)]


def autotune_getrf(spec: DeviceSpec, matrices: list[np.ndarray], *,
                   sample_size: int = 24, seed: int = 0,
                   candidates: list[dict] | None = None) -> TuningResult:
    """Pick irrLU parameters for this batch's size distribution.

    Runs each candidate configuration on a sampled sub-batch on a *fresh*
    simulated device (so trials don't perturb the caller's device state)
    and returns the fastest.  ``matrices`` are host matrices; the
    factorization trials work on copies.

    Candidates that violate a hard device limit
    (:class:`~repro.errors.InfeasibleConfig`) are skipped and recorded;
    any other :class:`ValueError` propagates — a malformed candidate or
    batch is a bug, not an infeasibility.  When every candidate is
    infeasible the result degrades to the default configuration with an
    empty trial table (``exhausted=True``) instead of crashing.
    """
    if not matrices:
        return TuningResult(best=dict(_CANDIDATES[0]), trials=[])
    rng = np.random.default_rng(seed)
    n_samp = min(sample_size, len(matrices))
    idx = rng.choice(len(matrices), size=n_samp, replace=False)
    sample = [matrices[i] for i in idx]

    trials: list[tuple[dict, float]] = []
    infeasible: list[dict] = []
    for cand in (candidates or _CANDIDATES):
        dev = Device(spec)
        batch = IrrBatch.from_host(dev, [m.copy() for m in sample])
        try:
            with dev.timed_region() as t:
                irr_getrf(dev, batch, **cand)
        except InfeasibleConfig:
            infeasible.append(dict(cand))
            continue  # hard device limit (e.g. forced fused panel)
        trials.append((dict(cand), t["elapsed"]))

    if not trials:
        # every candidate infeasible on this device/batch: degrade to
        # the kernel defaults instead of crashing on trials[0]
        return TuningResult(best=dict(_DEFAULT), trials=[],
                            sample_size=n_samp, infeasible=infeasible,
                            exhausted=True)
    trials.sort(key=lambda kv: kv[1])
    return TuningResult(best=trials[0][0], trials=trials,
                        sample_size=n_samp, infeasible=infeasible)
