"""The paper's flat vbatched API, verbatim (Figs 2–3 correspondence).

The library's native surface (:class:`IrrBatch` + offsets) is the
Pythonic form of the expanded interface.  This module additionally
provides the *literal* calling convention of the paper's Fig 3 — scalar
required dimensions, per-matrix dimension vectors, pointer arrays with
leading dimensions, scalar offsets — so that code written against the
MAGMA fork's C interface translates line by line:

.. code-block:: c

    magma_dgemm_vbatched(transA, transB, m, n, k, alpha,
                         dA_array, Ai, Aj, ldda,
                         dB_array, Bi, Bj, lddb, beta,
                         dC_array, Ci, Cj, lddc,
                         m_vec, n_vec, k_vec, batch_count, queue);

Here ``dA_array`` is a list of 2-D :class:`DeviceArray` buffers (the
pointer array), ``ldda`` their leading dimensions (validated against the
buffers), and the dimension vectors describe each matrix's local
operation sizes — exactly the quantities DCWI consumes.
"""

from __future__ import annotations

import numpy as np

from ..device.memory import DeviceArray
from ..device.simulator import Device
from .gemm import irr_gemm
from .getrf import irr_getrf
from .interface import IrrBatch
from .panel import PanelPivots
from .trsm import irr_trsm

__all__ = ["gemm_vbatched", "trsm_vbatched", "getrf_vbatched"]


def _as_batch(device: Device, arrays: list[DeviceArray], ldda,
              m_vec, n_vec, batch_count: int, what: str) -> IrrBatch:
    """Validate a (pointer array, ldda, dims) triple into an IrrBatch."""
    if len(arrays) != batch_count:
        raise ValueError(
            f"{what}: pointer array has {len(arrays)} entries, "
            f"batch_count is {batch_count}")
    ldda = np.asarray(ldda, dtype=np.int64)
    if ldda.ndim == 0:
        ldda = np.full(batch_count, int(ldda), dtype=np.int64)
    for i, a in enumerate(arrays):
        if a.shape[0] != int(ldda[i]):
            raise ValueError(
                f"{what}[{i}]: buffer leading dimension {a.shape[0]} "
                f"does not match ldda[{i}] = {int(ldda[i])}")
    return IrrBatch(device, arrays,
                    np.asarray(m_vec, dtype=np.int64),
                    np.asarray(n_vec, dtype=np.int64))


def gemm_vbatched(device: Device, transA: str, transB: str,
                  m: int, n: int, k: int, alpha: float,
                  dA_array: list[DeviceArray], Ai: int, Aj: int, ldda,
                  dB_array: list[DeviceArray], Bi: int, Bj: int, lddb,
                  beta: float,
                  dC_array: list[DeviceArray], Ci: int, Cj: int, lddc,
                  m_vec, n_vec, k_vec, batch_count: int, *,
                  queue=None) -> None:
    """Fig 3's nonuniform batched GEMM, paper calling convention.

    The per-matrix operation dimensions are given explicitly:
    ``op(A)_i`` is ``m_vec[i] × k_vec[i]``, ``op(B)_i`` is
    ``k_vec[i] × n_vec[i]``, ``C_i`` is ``m_vec[i] × n_vec[i]`` — all
    *before* the scalar offsets, which DCWI folds in.
    """
    m_vec = np.asarray(m_vec, dtype=np.int64)
    n_vec = np.asarray(n_vec, dtype=np.int64)
    k_vec = np.asarray(k_vec, dtype=np.int64)
    if not (len(m_vec) == len(n_vec) == len(k_vec) == batch_count):
        raise ValueError("dimension vectors must have batch_count entries")

    # Local dims of the stored operands in storage orientation.
    a_rows = m_vec + Ai if transA == "N" else k_vec + Ai
    a_cols = k_vec + Aj if transA == "N" else m_vec + Aj
    b_rows = k_vec + Bi if transB == "N" else n_vec + Bi
    b_cols = n_vec + Bj if transB == "N" else k_vec + Bj
    A = _as_batch(device, dA_array, ldda, a_rows, a_cols, batch_count, "A")
    B = _as_batch(device, dB_array, lddb, b_rows, b_cols, batch_count, "B")
    C = _as_batch(device, dC_array, lddc, m_vec + Ci, n_vec + Cj,
                  batch_count, "C")
    irr_gemm(device, transA, transB, m, n, k, alpha, A, (Ai, Aj),
             B, (Bi, Bj), beta, C, (Ci, Cj), stream=queue)


def trsm_vbatched(device: Device, side: str, uplo: str, transA: str,
                  diag: str, m: int, n: int, alpha: float,
                  dA_array: list[DeviceArray], Ai: int, Aj: int, ldda,
                  dB_array: list[DeviceArray], Bi: int, Bj: int, lddb,
                  m_vec, n_vec, batch_count: int, *, queue=None) -> None:
    """Nonuniform batched TRSM, paper calling convention.

    ``m_vec``/``n_vec`` are the per-matrix right-hand-side block shapes;
    the triangular order per matrix is the side-relevant one.
    """
    m_vec = np.asarray(m_vec, dtype=np.int64)
    n_vec = np.asarray(n_vec, dtype=np.int64)
    order = m_vec if side == "L" else n_vec
    T = _as_batch(device, dA_array, ldda, order + Ai, order + Aj,
                  batch_count, "A")
    Bb = _as_batch(device, dB_array, lddb, m_vec + Bi, n_vec + Bj,
                   batch_count, "B")
    irr_trsm(device, side, uplo, transA, diag, m, n, alpha, T, (Ai, Aj),
             Bb, (Bi, Bj), stream=queue)


def getrf_vbatched(device: Device,
                   dA_array: list[DeviceArray], ldda,
                   m_vec, n_vec, batch_count: int, *,
                   queue=None, **kw) -> PanelPivots:
    """irrLU-GPU with the paper's top-level calling convention
    (``/home/irrlu/src/dgetrf_vbatched.cpp`` in the artifact image)."""
    A = _as_batch(device, dA_array, ldda, m_vec, n_vec, batch_count, "A")
    return irr_getrf(device, A, stream=queue, **kw)
