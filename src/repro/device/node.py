"""Multi-device node: N simulated GPUs plus a modeled interconnect.

The paper's distributed design (§III-A) assigns rank-local subtrees to
"a single MPI rank and corresponding GPU"; a :class:`Node` is the
single-machine analogue — several :class:`~repro.device.simulator.Device`
instances that advance *independent* simulated timelines (subtree work
on different devices overlaps, exactly like concurrent MPI ranks) and
exchange data over :class:`Link` objects that cost simulated time the
same way the PCIe H2D/D2H model does (``latency + nbytes/bandwidth``,
see ``Device._account_transfer``).

Two link classes model the two physical paths of a real node:

* ``p2p_link`` — direct device↔device copies (NVLink-class by default);
* ``staging_link`` — device↔host staging (PCIe-class by default).  When
  a node is built without peer-to-peer capability (``p2p_link=None``),
  a device-to-device transfer pays **two** staged hops (D2H then H2D),
  which is what ``cudaMemcpyPeer`` degenerates to without GPUDirect.

A transfer is a rendezvous: it starts when *both* endpoints reach it
(``max`` of the two host clocks) and both clocks advance to its end —
the receiving device cannot consume bytes the sender has not produced.
Per-device link-byte counters feed the serving stats.

Timing only: transfers move no numerics (the host store is the data
plane, as in the rest of the simulator), so sharded execution stays
bitwise identical to single-device execution by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simulator import _PCIE_BANDWIDTH, _PCIE_LATENCY, Device
from .spec import DeviceSpec

__all__ = ["Link", "Node", "NVLINK", "PCIE_STAGING"]


@dataclass(frozen=True)
class Link:
    """A modeled interconnect: fixed latency plus a bandwidth term.

    ``seconds(nbytes)`` mirrors the device's PCIe transfer model
    (``_account_transfer``): every message pays ``latency`` once plus
    ``nbytes / bandwidth``.
    """

    bandwidth: float            #: bytes / second
    latency: float              #: seconds per message

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def seconds(self, nbytes: int) -> float:
        """Simulated time one message of ``nbytes`` occupies the link."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes} bytes")
        return self.latency + nbytes / self.bandwidth


#: NVLink-class device↔device path (per-direction, third-generation-ish).
NVLINK = Link(bandwidth=50e9, latency=2e-6)

#: PCIe-class device↔host staging path — the same constants the
#: single-device H2D/D2H model charges.
PCIE_STAGING = Link(bandwidth=_PCIE_BANDWIDTH, latency=_PCIE_LATENCY)


class Node:
    """``n_devices`` simulated GPUs with a modeled interconnect.

    Each device is an ordinary :class:`Device` (own memory arena,
    streams, clocks, recovery log); the node adds the cross-device data
    paths and aggregate accounting.  Like the device itself, the node's
    *launch* surface is single-owner — one thread drives transfers and
    kernel work at a time — while each device's memory accounting stays
    thread-safe.

    Parameters
    ----------
    spec:
        The :class:`DeviceSpec` every member device is built from
        (homogeneous nodes only — heterogeneous numerics would break
        the bitwise-parity contract for no modeling gain).
    n_devices:
        Number of member devices (>= 1).
    p2p_link:
        Device↔device link (:data:`NVLINK` by default).  Pass ``None``
        for a node without peer-to-peer: device-to-device transfers
        then pay two ``staging_link`` hops.
    staging_link:
        Device↔host link (:data:`PCIE_STAGING` by default).
    """

    def __init__(self, spec: DeviceSpec, n_devices: int, *,
                 p2p_link: Link | None = NVLINK,
                 staging_link: Link | None = None):
        if n_devices < 1:
            raise ValueError(f"need at least one device, got {n_devices}")
        self.spec = spec
        self.devices = [Device(spec) for _ in range(n_devices)]
        self.p2p_link = p2p_link
        self.staging_link = staging_link if staging_link is not None \
            else PCIE_STAGING
        #: bytes shipped over the p2p link / via host staging (totals).
        self.p2p_bytes = 0
        self.staged_bytes = 0
        #: per-device bytes that crossed a link at this endpoint.
        self.link_bytes = [0] * n_devices

    # ------------------------------------------------------------------
    # container surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, idx: int) -> Device:
        return self.devices[idx]

    def __iter__(self):
        return iter(self.devices)

    def index_of(self, device: Device) -> int:
        """Index of a member device (identity, not equality)."""
        for i, d in enumerate(self.devices):
            if d is device:
                return i
        raise ValueError(f"{device!r} is not a member of this node")

    # ------------------------------------------------------------------
    # the interconnect
    # ------------------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int) -> float:
        """Ship ``nbytes`` from device ``src`` to device ``dst``.

        Rendezvous semantics: the copy starts once both endpoints reach
        it (``max`` of their host clocks) and both clocks advance to
        its completion.  Uses the p2p link when the node has one,
        otherwise two staged hops through host memory.  A same-device
        "transfer" is free (the data is already there).  Returns the
        simulated seconds the copy occupied.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer {nbytes} bytes")
        s, d = self.devices[src], self.devices[dst]
        if s is d:
            return 0.0
        if self.p2p_link is not None:
            seconds = self.p2p_link.seconds(nbytes)
            self.p2p_bytes += nbytes
        else:
            # no peer access: D2H on the source, H2D on the destination
            seconds = 2 * self.staging_link.seconds(nbytes)
            self.staged_bytes += nbytes
        start = max(s.host_time, d.host_time)
        end = start + seconds
        s.host_time = end
        d.host_time = end
        s.profiler.note_transfer(seconds)
        d.profiler.note_transfer(seconds)
        self.link_bytes[src] += nbytes
        self.link_bytes[dst] += nbytes
        return seconds

    # ------------------------------------------------------------------
    # aggregate surface
    # ------------------------------------------------------------------
    def synchronize(self) -> float:
        """Synchronize every member device; returns the node makespan
        (the latest host clock — when the whole node is idle)."""
        return max(dev.synchronize() for dev in self.devices)

    @property
    def makespan(self) -> float:
        """Latest member host clock (without forcing a synchronize)."""
        return max(dev.host_time for dev in self.devices)

    @property
    def allocated_bytes(self) -> int:
        """Sum of member devices' live allocations."""
        return sum(dev.allocated_bytes for dev in self.devices)

    def reset(self) -> None:
        """Reset every member's clocks/trace and the link counters
        (allocations are kept, as in :meth:`Device.reset`)."""
        for dev in self.devices:
            dev.reset()
        self.p2p_bytes = 0
        self.staged_bytes = 0
        self.link_bytes = [0] * len(self.devices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Node({self.spec.name!r} x{len(self.devices)}, "
                f"makespan={self.makespan:.6f})")
