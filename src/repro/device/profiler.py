"""Profiler: per-kernel timing records and Nsight-style counters.

Table I of the paper quotes ``cudaStreamSynchronize`` and
``cudaLaunchKernel`` totals from the NVIDIA Nsight profiler to explain why
the batched implementation beats STRUMPACK's fine-grained one.  The
simulated device exposes the same counters so the reproduction can print
the same comparison.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .kernel import LaunchRecord

__all__ = ["Profiler", "KernelSummary"]


@dataclass
class KernelSummary:
    """Aggregate statistics for one kernel name."""

    name: str
    count: int = 0
    total_time: float = 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0


@dataclass
class Profiler:
    """Accumulates resolved launch records and host-side counters."""

    records: list[LaunchRecord] = field(default_factory=list)
    launch_count: int = 0
    host_launch_time: float = 0.0
    sync_count: int = 0
    sync_wait_time: float = 0.0
    transfer_count: int = 0
    transfer_time: float = 0.0
    stall_count: int = 0
    stall_time: float = 0.0

    def add_record(self, rec: LaunchRecord) -> None:
        self.records.append(rec)

    def note_launch(self, overhead: float) -> None:
        self.launch_count += 1
        self.host_launch_time += overhead

    def note_sync(self, wait: float) -> None:
        self.sync_count += 1
        self.sync_wait_time += max(wait, 0.0)

    def note_transfer(self, seconds: float) -> None:
        self.transfer_count += 1
        self.transfer_time += seconds

    def note_stall(self, seconds: float) -> None:
        """Record an injected stream stall (fault-injection timing)."""
        self.stall_count += 1
        self.stall_time += max(seconds, 0.0)

    # -- reporting ---------------------------------------------------------
    def by_kernel(self) -> dict[str, KernelSummary]:
        """Per-kernel-name aggregate durations (like an Nsight summary)."""
        out: dict[str, KernelSummary] = {}
        for rec in self.records:
            s = out.setdefault(rec.name, KernelSummary(rec.name))
            s.count += 1
            s.total_time += rec.duration
        return out

    def by_prefix(self, sep: str = ":") -> dict[str, float]:
        """Total durations grouped by the kernel-name prefix before ``sep``.

        Kernel names follow ``family:detail`` (e.g. ``irrgemm:update``),
        so this gives the Fig 14-style operation breakdown.
        """
        out: dict[str, float] = defaultdict(float)
        for rec in self.records:
            out[rec.name.split(sep, 1)[0]] += rec.duration
        return dict(out)

    def total_kernel_time(self) -> float:
        return sum(rec.duration for rec in self.records)

    def snapshot(self) -> dict[str, float]:
        """Host-side counters in one dict (for diffs across a region)."""
        return {
            "launch_count": self.launch_count,
            "host_launch_time": self.host_launch_time,
            "sync_count": self.sync_count,
            "sync_wait_time": self.sync_wait_time,
            "transfer_time": self.transfer_time,
            "stall_time": self.stall_time,
        }

    def clear(self) -> None:
        self.records.clear()
        self.launch_count = 0
        self.host_launch_time = 0.0
        self.sync_count = 0
        self.sync_wait_time = 0.0
        self.transfer_count = 0
        self.transfer_time = 0.0
        self.stall_count = 0
        self.stall_time = 0.0
