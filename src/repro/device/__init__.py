"""GPU/CPU execution-model substrate.

The paper's measurements depend on a handful of architectural mechanisms
(kernel-launch overhead, SM sharing between streams, shared-memory
capacity, roofline throughput).  This package provides a simulated device
that executes kernel numerics eagerly in NumPy while accounting time with
a discrete-event model of those mechanisms.

Quick use::

    from repro.device import Device, A100

    dev = Device(A100())
    A = dev.from_host(host_matrix)
    ... launch kernels ...
    dev.synchronize()
    print(dev.host_time, dev.profiler.by_kernel())
"""

from .faults import CORRUPT_MAGNITUDE, FAULT_KINDS, PERSISTENT, \
    FaultInjector, FaultPlan, FaultRule, InjectedFault
from .kernel import KernelCost, LaunchRecord, gemm_compute_ramp, \
    intrinsic_duration, sm_demand
from .memory import MAX_TRANSFER_ATTEMPTS, DeviceArray, DeviceOutOfMemory, \
    pack_to_device, validate_memory_budget
from .node import Link, Node, NVLINK, PCIE_STAGING
from .profiler import KernelSummary, Profiler
from .simulator import Device
from .spec import A100, MI100, XEON_6140_2S, CpuSpec, DeviceSpec
from .stream import Event, Stream

__all__ = [
    "Device", "Node", "Link", "NVLINK", "PCIE_STAGING",
    "DeviceArray", "DeviceOutOfMemory", "pack_to_device",
    "validate_memory_budget", "MAX_TRANSFER_ATTEMPTS",
    "FaultPlan", "FaultRule", "FaultInjector", "InjectedFault",
    "PERSISTENT", "FAULT_KINDS", "CORRUPT_MAGNITUDE",
    "DeviceSpec", "CpuSpec",
    "A100", "MI100", "XEON_6140_2S", "Stream", "Event", "KernelCost",
    "LaunchRecord",
    "Profiler", "KernelSummary", "intrinsic_duration", "sm_demand",
    "gemm_compute_ramp",
]
