"""Deterministic fault injection for the simulated device pipeline.

Real GPU runs fail in ways correctness tests never exercise: an
allocation that succeeds on one traversal and fails on the next, a DMA
transfer that lands with a flipped bit, a kernel launch the runtime
rejects, a stream that stalls behind an unrelated tenant.  This module
makes those failures *first-class, seeded inputs* so the recovery
machinery in the solver stack can be driven — and proven bitwise-safe —
under any schedule.

Model
-----
A :class:`FaultPlan` is a pure value: a tuple of :class:`FaultRule`
entries plus a seed.  Installing it on a device::

    with device.fault_scope(FaultPlan([
            FaultRule("alloc", at=3),                  # 4th alloc fails once
            FaultRule("h2d", probability=0.05),        # 5% corrupted uploads
            FaultRule("launch", match="irrgemm", at=0),
            FaultRule("stall", at=2, stall=1e-3),
    ], seed=7)) as injector:
        ...

creates a :class:`FaultInjector` that the device consults at each fault
site (allocation, H2D/D2H transfer, kernel launch).  The injector keeps
one operation counter per fault kind; a rule fires positionally
(``at``/``times``) or probabilistically (``probability``, drawn from the
plan's seeded generator).  The full fault schedule is therefore a pure
function of ``(seed, rules, operation sequence)`` — re-running the same
program against the same plan reproduces the same faults, which is what
makes chaos tests assertable.

Fault kinds
-----------
``alloc``
    The allocation raises
    :class:`~repro.device.memory.DeviceOutOfMemory` *before* any bytes
    are claimed.  ``times=1`` models a transient spike (a retry
    succeeds); ``times=PERSISTENT`` models true exhaustion.
``h2d`` / ``d2h``
    One bit of the transferred payload is flipped after the copy.  With
    transfer verification enabled (the default inside a fault scope)
    the checksum mismatch is detected and the transfer retried; a
    persistent rule exhausts the retry budget into a typed
    :class:`~repro.errors.TransferError`.
``launch``
    :class:`~repro.errors.KernelLaunchError` is raised before the
    kernel's numerics run, so no device state changes — retrying the
    launch (or the enclosing level transaction) is always safe.
``stall``
    The target stream's next kernels are delayed by ``stall`` simulated
    seconds (timing-only: numerics are unaffected).
``corrupt``
    One element of a *completed* launch's output buffer is overwritten
    with a scale-dominant wrong value after the kernel's numerics ran —
    silent data corruption, invisible to launch/transfer checking.
    Only launches that register their outputs (the batched GETRF /
    TRSM / GEMM drivers and the compiled replay steps do) are corrupt
    sites; the ABFT checksum layer (:mod:`repro.batched.abft`) detects
    the damage when kernel verification is on (the default inside a
    fault scope whose plan carries corrupt rules).  The perturbation is
    deliberately large relative to the buffer's magnitude so
    tolerance-based detection can never miss it — the *detectability*
    of low-order bit flips is a different (ABFT-theoretic) question
    than the recovery machinery exercised here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..errors import KernelLaunchError
from .memory import DeviceOutOfMemory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Device
    from .stream import Stream

__all__ = ["FaultRule", "FaultPlan", "FaultInjector", "PERSISTENT",
           "FAULT_KINDS"]

#: ``times=PERSISTENT`` makes a rule fire on every matching operation.
PERSISTENT = -1

FAULT_KINDS = ("alloc", "h2d", "d2h", "launch", "stall", "corrupt")

#: magnitude of an injected output corruption, as a multiple of
#: ``1 + max|output|``: dominant over any rounding-error tolerance the
#: ABFT checks use, so an injected corruption is always detectable.
CORRUPT_MAGNITUDE = 1e3


@dataclass(frozen=True)
class FaultRule:
    """One seeded fault source.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Fire at the ``at``-th *matching* operation (0-based; each rule
        counts the operations of its kind that pass its ``match``
        filter, so ``FaultRule("alloc", at=0, match="pack")`` means "the
        first pack allocation", however many other allocations precede
        it).  ``None`` disables positional firing (use ``probability``).
    times:
        How many consecutive matching operations fire starting at
        ``at`` (default 1 = transient).  :data:`PERSISTENT` fires
        forever — an unrecoverable fault.
    probability:
        Per-operation Bernoulli firing probability drawn from the
        plan's seeded generator (used when ``at`` is ``None``).
    match:
        Substring filter on the site label (kernel name, transfer
        site); ``""`` matches everything.
    stall:
        Stall duration in simulated seconds (``kind="stall"`` only).
    """

    kind: str
    at: int | None = None
    times: int = 1
    probability: float = 0.0
    match: str = ""
    stall: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.at is None and self.probability <= 0.0:
            raise ValueError(
                f"rule {self.kind!r} needs a position (at=) or a "
                f"probability (> 0)")
        if self.at is not None and self.at < 0:
            raise ValueError("at must be >= 0")
        if self.times == 0 or self.times < PERSISTENT:
            raise ValueError("times must be >= 1 or PERSISTENT (-1)")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.kind == "stall" and self.stall <= 0.0:
            raise ValueError("stall rules need stall > 0 seconds")

    def fires_at(self, index: int) -> bool:
        """Positional firing test for the ``index``-th matching op."""
        if self.at is None:
            return False
        if index < self.at:
            return False
        return self.times == PERSISTENT or index < self.at + self.times


class FaultPlan:
    """An immutable, seeded fault schedule specification.

    The pair ``(rules, seed)`` fully determines the fault schedule for
    any given program: two runs of the same code under the same plan
    observe identical faults.
    """

    def __init__(self, rules: Iterable[FaultRule], *, seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        for r in self.rules:
            if not isinstance(r, FaultRule):
                raise TypeError(f"expected FaultRule, got {type(r).__name__}")
        self.seed = int(seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ",".join(r.kind for r in self.rules)
        return f"FaultPlan([{kinds}], seed={self.seed})"


@dataclass
class InjectedFault:
    """Record of one fault the injector actually fired (for assertions)."""

    kind: str
    site: str
    index: int        #: per-kind operation index at which it fired


class FaultInjector:
    """Executes a :class:`FaultPlan` against a device's fault sites.

    One injector instance tracks per-kind operation counters and the
    plan's seeded generator; install it with
    :meth:`~repro.device.simulator.Device.fault_scope`.  The ``injected``
    list records every fault fired, so tests can assert the schedule
    (and the recovery log) precisely.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counters: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._rule_counts: dict[int, int] = {}
        self.injected: list[InjectedFault] = []

    # ------------------------------------------------------------------
    def _fire(self, kind: str, site: str) -> FaultRule | None:
        """Advance the ``kind`` counter; return the first firing rule.

        Positional rules index into their *own* matched-operation count,
        so ``match`` narrows both which sites a rule can hit and how its
        ``at`` position is counted.
        """
        index = self.counters[kind]
        self.counters[kind] = index + 1
        hit = None
        for ri, rule in enumerate(self.plan.rules):
            if rule.kind != kind or rule.match not in site:
                continue
            matched = self._rule_counts.get(ri, 0)
            self._rule_counts[ri] = matched + 1
            if rule.at is not None:
                fired = rule.fires_at(matched)
            else:
                # one deterministic draw per matching probabilistic rule
                fired = self.rng.random() < rule.probability
            if fired and hit is None:
                hit = rule
        if hit is not None:
            self.injected.append(InjectedFault(kind, site, index))
        return hit

    # -- fault sites (called by the device layer) ----------------------
    def on_alloc(self, device: "Device", nbytes: int, site: str) -> None:
        """Allocation site: may raise an injected out-of-memory."""
        if self._fire("alloc", site) is not None:
            raise DeviceOutOfMemory(
                f"{device.spec.name}: injected allocation failure of "
                f"{nbytes} bytes at {site!r}")

    def on_transfer(self, direction: str, data: np.ndarray,
                    site: str) -> bool:
        """Transfer site: may flip one bit of ``data`` in place.

        Returns True when a corruption was injected.  The flip position
        is drawn from the seeded generator, so the corruption pattern is
        part of the reproducible schedule.
        """
        if self._fire(direction, site) is None or data.size == 0:
            return False
        idx = int(self.rng.integers(data.size))
        bit = int(self.rng.integers(8 * data.dtype.itemsize))
        raw = bytearray(np.asarray(data.flat[idx]).tobytes())
        raw[bit // 8] ^= 1 << (bit % 8)
        data.flat[idx] = np.frombuffer(bytes(raw), dtype=data.dtype)[0]
        return True

    def on_launch(self, device: "Device", name: str,
                  stream: "Stream") -> None:
        """Launch site: may raise a launch failure or stall the stream.

        Called before the kernel's function runs, so an injected
        failure leaves device memory untouched.
        """
        rule = self._fire("launch", name)
        if rule is not None:
            raise KernelLaunchError(name, "injected launch failure")
        rule = self._fire("stall", name)
        if rule is not None:
            stream.pending_stall += rule.stall
            device.profiler.note_stall(rule.stall)

    def on_kernel_output(self, name: str,
                         outputs: Sequence[np.ndarray]) -> bool:
        """Output site: may corrupt one element of a completed launch.

        Called after the kernel's numerics ran, with the output arrays
        the launch registered.  A firing ``corrupt`` rule overwrites
        one seeded element of one seeded output with a value
        :data:`CORRUPT_MAGNITUDE` times the buffer's magnitude — the
        silent-data-corruption model the ABFT checks exist for.
        Returns True when a corruption was injected.
        """
        rule = self._fire("corrupt", name)
        if rule is None:
            return False
        arrs = [a for a in (np.asarray(getattr(o, "data", o))
                            for o in outputs) if a.size]
        if not arrs:
            return False
        a = arrs[int(self.rng.integers(len(arrs)))]
        idx = int(self.rng.integers(a.size))
        scale = CORRUPT_MAGNITUDE * (1.0 + float(np.max(np.abs(a))))
        sign = 1.0 if self.rng.random() < 0.5 else -1.0
        a.flat[idx] = a.dtype.type(sign * scale)
        return True

    # -- inspection ----------------------------------------------------
    @property
    def has_corrupt_rules(self) -> bool:
        """Whether the plan carries any ``corrupt`` rule (drives the
        device's automatic kernel-verification enablement)."""
        return any(r.kind == "corrupt" for r in self.plan.rules)

    @property
    def n_injected(self) -> int:
        return len(self.injected)

    def injected_of(self, kind: str) -> list[InjectedFault]:
        return [f for f in self.injected if f.kind == kind]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultInjector({self.plan!r}, "
                f"injected={self.n_injected})")
