"""The simulated device: eager numerics, discrete-event timing.

Execution model
---------------
*Functional layer.*  ``Device.launch(name, fn, cost, stream=...)`` runs
``fn()`` immediately — kernels are ordinary Python callables operating on
:class:`~repro.device.memory.DeviceArray` data, so every numerical result
is real.  Callers must keep data-dependent kernels on one stream (FIFO
semantics); the eager execution order then coincides with a legal device
schedule.

*Timing layer.*  Each launch appends a :class:`LaunchRecord` carrying its
host issue time (the host clock advances by ``launch_overhead_host`` per
launch, which serializes multi-stream submission) and roofline cost.
``Device.synchronize()`` resolves all pending records with a discrete-event
simulation:

- a kernel becomes *ready* at ``max(host_issue, predecessor-in-stream end)``;
- co-resident kernels share the SMs — when the total SM demand exceeds the
  device, every active kernel's progress rate scales by
  ``n_sm / total_demand``;
- completion re-enables the next kernel in the same stream.

The host then waits for the makespan (recorded as synchronize wait — the
``cudaStreamSynchronize`` counter of Table I).
"""

from __future__ import annotations

import hashlib
import math
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

import numpy as np

from ..recovery import RecoveryLog
from .kernel import KernelCost, LaunchRecord, intrinsic_duration, sm_demand
from .memory import DeviceArray, DeviceOutOfMemory
from .profiler import Profiler
from .spec import DeviceSpec
from .stream import Stream

__all__ = ["Device"]

_PCIE_BANDWIDTH = 25e9      # bytes/s
_PCIE_LATENCY = 10e-6       # seconds per transfer

# Transfer-retry backoff ladder: delay before the (n+1)-th attempt is
# _BACKOFF_BASE * _BACKOFF_FACTOR**(n-1), plus up to _BACKOFF_JITTER of
# itself in deterministic seeded jitter (see Device.transfer_backoff).
_BACKOFF_BASE = 50e-6       # seconds before the 2nd attempt
_BACKOFF_FACTOR = 4.0
_BACKOFF_JITTER = 0.25


class Device:
    """A simulated GPU: memory arena, streams, launch trace, clocks.

    Thread-safety contract: memory accounting (``_claim``/``_release``,
    and therefore ``empty``/``zeros``/``from_host``/``free``) and the
    recovery log are safe to use from concurrent threads.  Kernel
    *launches*, stream bookkeeping and the host/device clocks are
    **single-owner**: exactly one thread may drive them at a time (the
    serving layer in :mod:`repro.serve` enforces this by funnelling all
    device work through one dispatcher thread).
    """

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self.profiler = Profiler()
        self.host_time = 0.0
        self.device_time = 0.0            # makespan of resolved kernels
        self.allocated_bytes = 0
        self.peak_allocated_bytes = 0
        #: monotone count of successful capacity claims — compiled
        #: workload programs assert replays perform zero new allocations
        #: by differencing this counter across runs.
        self.alloc_count = 0
        # Guards the capacity check-and-claim and the release so
        # concurrent workers can never over-commit the device or corrupt
        # the byte counters (re-entrant: DeviceArray.free() holds it
        # while delegating to _release).
        self._mem_lock = threading.RLock()
        self.recovery_log = RecoveryLog()
        self.verify_transfers = False
        self.verify_kernels = False
        self._injector = None             # installed by fault_scope()
        self._streams: dict[int, Stream] = {0: Stream(0)}
        self._seq = 0
        self._pending: list[LaunchRecord] = []

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    @contextmanager
    def fault_scope(self, plan, *, verify_transfers: bool = True,
                    verify_kernels: bool | None = None):
        """Install a seeded fault schedule for the duration of a block.

        ``plan`` is a :class:`~repro.device.faults.FaultPlan` (or an
        already-constructed :class:`~repro.device.faults.FaultInjector`
        to share counters across scopes).  While installed, the device
        consults the injector at every allocation, transfer, launch and
        registered kernel output; transfer verification is switched on
        by default so injected corruption is detected rather than
        silently consumed (pass ``verify_transfers=False`` to test the
        unprotected path).  ABFT kernel verification
        (``verify_kernels``) defaults to *automatic*: it switches on
        exactly when the plan carries ``corrupt`` rules, so fault plans
        without output corruption keep every existing code path
        byte-for-byte identical; pass ``True``/``False`` to force it.
        Yields the injector; the previous injector/verification state is
        restored on exit.
        """
        from .faults import FaultInjector
        inj = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
        prev_inj, prev_verify = self._injector, self.verify_transfers
        prev_vk = self.verify_kernels
        if verify_kernels is None:
            verify_kernels = inj.has_corrupt_rules
        self._injector = inj
        self.verify_transfers = bool(verify_transfers) or prev_verify
        self.verify_kernels = bool(verify_kernels) or prev_vk
        try:
            yield inj
        finally:
            self._injector = prev_inj
            self.verify_transfers = prev_verify
            self.verify_kernels = prev_vk

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def empty(self, shape, dtype=np.float64) -> DeviceArray:
        """Allocate an uninitialized array in device memory.

        Capacity is claimed before the host-side buffer is built and
        released if construction fails, so failures never leak
        accounting.
        """
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize \
            if np.ndim(shape) else int(shape) * dt.itemsize
        self._claim(nbytes, site="empty")
        try:
            arr = np.empty(shape, dtype=dt)
        except BaseException:
            self._release(nbytes)
            raise
        return DeviceArray(self, arr)

    def zeros(self, shape, dtype=np.float64) -> DeviceArray:
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize \
            if np.ndim(shape) else int(shape) * dt.itemsize
        self._claim(nbytes, site="zeros")
        try:
            arr = np.zeros(shape, dtype=dt)
        except BaseException:
            self._release(nbytes)
            raise
        return DeviceArray(self, arr)

    def from_host(self, host: np.ndarray, *,
                  verify: bool | None = None) -> DeviceArray:
        """Allocate and copy a host array to the device (H2D transfer).

        ``verify`` follows ``self.verify_transfers`` when ``None``; see
        :meth:`DeviceArray.copy_from_host` for checksum/retry semantics.
        """
        host = np.asarray(host)
        self._claim(host.nbytes, site="from_host")
        try:
            arr = DeviceArray(self, np.empty(host.shape, dtype=host.dtype))
            arr.copy_from_host(host, verify=verify)
        except BaseException:
            self._release(host.nbytes)
            raise
        return arr

    def _claim(self, nbytes: int, site: str = "alloc") -> None:
        if nbytes < 0:
            raise ValueError(f"cannot claim a negative allocation "
                             f"({nbytes} bytes at {site!r})")
        if self._injector is not None:
            self._injector.on_alloc(self, nbytes, site)
        with self._mem_lock:
            if self.allocated_bytes + nbytes > self.spec.memory_capacity:
                raise DeviceOutOfMemory(
                    f"{self.spec.name}: allocation of {nbytes} bytes exceeds "
                    f"capacity ({self.allocated_bytes} of "
                    f"{self.spec.memory_capacity} in use)")
            self.allocated_bytes += nbytes
            self.alloc_count += 1
            self.peak_allocated_bytes = max(self.peak_allocated_bytes,
                                            self.allocated_bytes)

    def _release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"cannot release a negative allocation "
                             f"({nbytes} bytes)")
        with self._mem_lock:
            if nbytes > self.allocated_bytes:
                raise RuntimeError(
                    f"release of {nbytes} bytes exceeds the "
                    f"{self.allocated_bytes} bytes currently allocated — "
                    f"double release?")
            self.allocated_bytes -= nbytes

    def _account_transfer(self, nbytes: int) -> None:
        seconds = _PCIE_LATENCY + nbytes / _PCIE_BANDWIDTH
        self.host_time += seconds
        self.profiler.note_transfer(seconds)

    def transfer_backoff(self, attempt: int, site: str) -> float:
        """Exponential backoff before retrying a corrupted transfer.

        ``attempt`` is the 1-based number of the attempt that just
        failed verification; the delay before attempt ``attempt + 1``
        grows geometrically from :data:`_BACKOFF_BASE` and carries a
        deterministic jitter fraction derived by hashing
        ``(seed, site, attempt)`` — a pure function of the installed
        fault plan's seed, so retry schedules are exactly reproducible
        yet decorrelated across sites (and never perturb the injector's
        own random stream).  Advances the host clock and returns the
        delay in simulated seconds.
        """
        base = _BACKOFF_BASE * _BACKOFF_FACTOR ** (max(attempt, 1) - 1)
        seed = self._injector.plan.seed if self._injector is not None else 0
        key = f"{seed}:{site}:{attempt}".encode()
        h = int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(),
                           "little")
        delay = base * (1.0 + _BACKOFF_JITTER * (h % 2 ** 20) / 2 ** 20)
        self.host_time += delay
        return delay

    # ------------------------------------------------------------------
    # streams and launches
    # ------------------------------------------------------------------
    def stream(self, sid: int) -> Stream:
        """Get or create the stream with the given id."""
        if sid not in self._streams:
            self._streams[sid] = Stream(sid)
        return self._streams[sid]

    def new_stream(self) -> Stream:
        """Create a fresh stream with an unused id (cudaStreamCreate)."""
        sid = max(self._streams) + 1
        self.host_time += self.spec.sync_overhead_host
        return self.stream(sid)

    @property
    def default_stream(self) -> Stream:
        return self._streams[0]

    def record_event(self, stream: Stream | int | None = None) -> "Event":
        """Capture a stream's current position (cudaEventRecord).

        A later launch passing this event in ``wait_events`` cannot start
        until everything launched into ``stream`` before the record has
        completed.
        """
        from .stream import Event
        if isinstance(stream, int):
            stream = self.stream(stream)
        elif stream is None:
            stream = self.default_stream
        self.host_time += self.spec.sync_overhead_host
        return Event(stream=stream.sid, seq=stream.last_seq)

    def launch(self, name: str, fn: Callable[[], KernelCost | None] | None,
               cost: KernelCost | None = None, *,
               stream: Stream | int | None = None,
               wait_events: Sequence | None = None,
               outputs=None) -> KernelCost:
        """Launch a kernel: run its numerics now, queue its timing.

        ``fn`` may return a :class:`KernelCost` (preferred: the cost often
        depends on DCWI-inferred workloads known only inside the kernel);
        otherwise ``cost`` must be supplied.  Shared-memory feasibility is
        validated against the device limit.

        ``outputs`` registers the launch's output buffers (a sequence of
        arrays, or a zero-argument callable returning one — evaluated
        lazily, only when a fault injector is installed).  A registered
        launch is a ``corrupt`` fault site: after the numerics complete,
        an injected silent-data-corruption rule may overwrite one seeded
        element of one output, modelling a kernel that finishes but
        computes wrong bytes.  Launches without registered outputs are
        never corrupted.
        """
        if isinstance(stream, int):
            stream = self.stream(stream)
        elif stream is None:
            stream = self.default_stream

        # Fault site: an injected launch failure (or stream stall) fires
        # before the kernel's numerics run, so device state is unchanged
        # and the caller may retry the launch from consistent inputs.
        if self._injector is not None:
            self._injector.on_launch(self, name, stream)

        returned = fn() if fn is not None else None

        # Fault site: output corruption fires after the numerics, so the
        # launch "succeeded" and only ABFT verification can notice.
        if self._injector is not None and outputs is not None:
            outs = outputs() if callable(outputs) else outputs
            self._injector.on_kernel_output(name, outs)

        if isinstance(returned, KernelCost):
            cost = returned
        if cost is None:
            raise ValueError(f"kernel {name!r} supplied no KernelCost")
        if cost.shared_mem_per_block > self.spec.max_shared_per_block:
            raise ValueError(
                f"kernel {name!r} requests {cost.shared_mem_per_block} B of "
                f"shared memory > per-block limit "
                f"{self.spec.max_shared_per_block} B on {self.spec.name}")

        self.host_time += self.spec.launch_overhead_host
        self.profiler.note_launch(self.spec.launch_overhead_host)

        rec = LaunchRecord(name=name, stream=stream.sid, cost=cost,
                           seq=self._seq, host_issue=self.host_time,
                           wait_events=list(wait_events or ()))
        self._seq += 1
        stream.push(rec)
        self._pending.append(rec)
        return cost

    def host_compute(self, seconds: float) -> None:
        """Advance the host clock by CPU-side work (e.g. CPU panels)."""
        self.host_time += max(seconds, 0.0)

    # ------------------------------------------------------------------
    # timing resolution
    # ------------------------------------------------------------------
    def synchronize(self) -> float:
        """Resolve all pending launches; host blocks until the device idles.

        Returns the host time after synchronization.
        """
        makespan = self._resolve()
        wait = makespan - self.host_time
        self.profiler.note_sync(wait)
        self.host_time = max(self.host_time, makespan)
        self.host_time += self.spec.sync_overhead_host
        return self.host_time

    def _resolve(self) -> float:
        """Discrete-event simulation of every pending launch."""
        if not self._pending:
            return self.device_time

        # Per-stream FIFO chains; the head of each chain arrives at
        # max(host_issue, previous completion in that stream).
        chains: dict[int, list[LaunchRecord]] = {}
        for rec in self._pending:
            chains.setdefault(rec.stream, []).append(rec)
        for sid, recs in chains.items():
            recs.sort(key=lambda r: r.seq)

        heads: dict[int, int] = {sid: 0 for sid in chains}
        # A pending stream stall (injected fault) delays the stream's
        # next kernel chain; consumed here, once.
        prev_end: dict[int, float] = {}
        for sid in chains:
            s = self._streams[sid]
            prev_end[sid] = s.tail + s.pending_stall
            s.pending_stall = 0.0
        active: list[LaunchRecord] = []
        now = 0.0
        makespan = self.device_time

        stream_busy: dict[int, bool] = {sid: False for sid in chains}

        # Resolve the events pending launches wait on: each event completes
        # when the last pending kernel at-or-before its recorded position
        # finishes (or is already complete if nothing is pending there).
        event_gate: dict[int, list] = {}   # gating record seq -> [events]
        for rec in self._pending:
            for ev in rec.wait_events:
                if ev.resolved:
                    continue
                gate = None
                for other in chains.get(ev.stream, ()):  # sorted by seq
                    if other.seq <= ev.seq:
                        gate = other
                    else:
                        break
                if gate is None:
                    ev.completed_at = self._streams[ev.stream].tail \
                        if ev.stream in self._streams else 0.0
                else:
                    event_gate.setdefault(gate.seq, []).append(ev)

        def arrival_time(sid: int) -> float | None:
            i = heads[sid]
            if i >= len(chains[sid]) or stream_busy[sid]:
                return None  # exhausted, or FIFO predecessor still running
            rec = chains[sid][i]
            t = max(rec.host_issue, prev_end[sid])
            for ev in rec.wait_events:
                if not ev.resolved:
                    return None  # blocked on a cross-stream event
                t = max(t, ev.completed_at)
            return t

        while True:
            total_demand = sum(r.sm_demand for r in active)
            rate = 1.0 if total_demand <= self.spec.n_sm else \
                self.spec.n_sm / total_demand

            t_complete = math.inf
            completing: LaunchRecord | None = None
            for r in active:
                t = now + r.remaining / rate
                if t < t_complete:
                    t_complete, completing = t, r

            t_arrive = math.inf
            arriving_sid: int | None = None
            for sid in chains:
                t = arrival_time(sid)
                if t is not None and t < t_arrive:
                    t_arrive, arriving_sid = t, sid

            if completing is None and arriving_sid is None:
                if any(heads[sid] < len(chains[sid]) for sid in chains):
                    raise RuntimeError(
                        "event deadlock: pending launches wait on events "
                        "that can never complete")
                break

            # Arrivals break ties so a kernel never completes "around" a
            # co-resident arrival that should have slowed it down.
            if t_arrive <= t_complete:
                dt = max(t_arrive - now, 0.0)
                for r in active:
                    r.remaining -= dt * rate
                now = t_arrive
                rec = chains[arriving_sid][heads[arriving_sid]]
                heads[arriving_sid] += 1
                rec.start = now
                rec.sm_demand = sm_demand(rec.cost, self.spec)
                rec.intrinsic = intrinsic_duration(rec.cost, self.spec)
                rec.remaining = rec.intrinsic
                active.append(rec)
                stream_busy[arriving_sid] = True
            else:
                dt = max(t_complete - now, 0.0)
                for r in active:
                    r.remaining -= dt * rate
                now = t_complete
                completing.end = now
                completing.remaining = 0.0
                active.remove(completing)
                stream_busy[completing.stream] = False
                prev_end[completing.stream] = now
                for ev in event_gate.pop(completing.seq, ()):
                    ev.completed_at = now
                self._streams[completing.stream].tail = now
                makespan = max(makespan, now)
                self.profiler.add_record(completing)

        self._pending.clear()
        self.device_time = makespan
        return makespan

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    @contextmanager
    def timed_region(self) -> Iterator[dict]:
        """Measure simulated elapsed host time across a region.

        Synchronizes at entry and exit (like wrapping a measured region in
        ``cudaDeviceSynchronize``); yields a dict later filled with
        ``elapsed`` plus the counter deltas for the region.
        """
        self.synchronize()
        t0 = self.host_time
        snap0 = self.profiler.snapshot()
        out: dict = {}
        yield out
        self.synchronize()
        snap1 = self.profiler.snapshot()
        out["elapsed"] = self.host_time - t0
        for key in snap0:
            out[key] = snap1[key] - snap0[key]

    def reset(self) -> None:
        """Clear clocks, trace and profiler (allocations are kept)."""
        self.synchronize()
        self.host_time = 0.0
        self.device_time = 0.0
        for s in self._streams.values():
            s.tail = 0.0
            s.pending_stall = 0.0
        self.profiler.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Device({self.spec.name!r}, host_time={self.host_time:.6f}, "
                f"alloc={self.allocated_bytes}B)")
