"""Hardware execution-model specifications.

The reproduction runs on CPU-only hardware, so GPU behaviour is captured by
an explicit performance model.  A :class:`DeviceSpec` records the handful of
architectural parameters that drive every effect the paper measures:

* host-side kernel-launch overhead (serializes the 16-stream baseline),
* device-side launch latency,
* SM count and per-SM shared-memory capacity (gates the fused ``irrGETF2``
  panel kernel and block occupancy),
* FP64 peak throughput and HBM bandwidth (roofline kernel timing).

The concrete numbers come from the public spec sheets of the machines used
in the paper (A100-SXM4, MI100, dual-socket Xeon Gold 6140).  They are
calibration constants for the *shape* of the results, not promises about
absolute microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceSpec", "CpuSpec", "A100", "MI100", "XEON_6140_2S"]

_KB = 1024
_GB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a (simulated) GPU.

    Attributes
    ----------
    name:
        Human-readable device name used in reports.
    n_sm:
        Number of streaming multiprocessors (AMD: compute units).
    shared_mem_per_sm:
        Shared memory (AMD: LDS) capacity per SM in bytes.  This is the
        quantity the paper calls out as 192 KB on the A100 vs 64 KB on the
        MI100, which moves the ``irrGETF2``/column-wise switch point.
    max_shared_per_block:
        Largest shared-memory allocation a single thread block may request.
    peak_flops_fp64:
        FP64 peak of the whole device in flop/s *without* matrix engines
        (the paper's kernels do not use Tensor Cores / Matrix Cores).
    mem_bandwidth:
        Peak global-memory bandwidth in bytes/s.
    memory_capacity:
        Global memory capacity in bytes; allocations beyond this raise.
    launch_overhead_host:
        Host CPU time consumed per kernel launch.  Launches from all
        streams serialize through this cost, which is the first-order
        reason "cuSOLVER in 16 streams" collapses for thousands of small
        matrices.
    launch_overhead_device:
        Device-side latency added to every kernel's duration (scheduling,
        tail effects).
    sync_overhead_host:
        Host cost of a stream/device synchronization call.
    max_blocks_per_sm:
        Hardware occupancy limit on co-resident blocks per SM.
    max_threads_per_block:
        Hardware limit on threads per block.
    sm_bw_saturation_frac:
        Fraction of the SMs that suffices to saturate memory bandwidth.
        A kernel occupying fewer SMs gets proportionally less bandwidth.
    kernel_efficiency:
        Per-kernel-class asymptotic efficiency factors (fraction of peak
        reachable by that kernel family on this device); see
        :mod:`repro.device.kernel` for how they enter the roofline.
    """

    name: str
    n_sm: int
    shared_mem_per_sm: int
    max_shared_per_block: int
    peak_flops_fp64: float
    mem_bandwidth: float
    memory_capacity: int
    launch_overhead_host: float
    launch_overhead_device: float
    sync_overhead_host: float = 2.0e-6
    max_blocks_per_sm: int = 32
    max_threads_per_block: int = 1024
    sm_bw_saturation_frac: float = 0.25
    kernel_efficiency: dict[str, float] = field(default_factory=dict)

    def efficiency(self, kernel_class: str, default: float = 0.5) -> float:
        """Asymptotic fraction of peak for a kernel family on this device."""
        return self.kernel_efficiency.get(kernel_class, default)

    @property
    def peak_flops_per_sm(self) -> float:
        return self.peak_flops_fp64 / self.n_sm

    def resident_blocks_per_sm(self, shared_mem_per_block: int,
                               threads_per_block: int = 256) -> int:
        """Occupancy: blocks co-resident on one SM, limited by shared memory.

        Returns 0 when a single block exceeds the per-block shared-memory
        limit (the kernel cannot launch at all — callers must fall back,
        exactly as ``irrLU-GPU`` falls back from the fused panel kernel).
        """
        if shared_mem_per_block > self.max_shared_per_block:
            return 0
        if shared_mem_per_block <= 0:
            return self.max_blocks_per_sm
        by_smem = self.shared_mem_per_sm // shared_mem_per_block
        return int(min(self.max_blocks_per_sm, max(by_smem, 0)))


@dataclass(frozen=True)
class CpuSpec:
    """Execution model of a multicore CPU used for the MKL-like baseline.

    The CPU model is deliberately simpler than the GPU one: a batch of
    independent factorizations is spread across cores, and each matrix is
    processed at an efficiency that grows with its size (small LAPACK
    factorizations are latency/bandwidth bound, large ones approach the
    vendor-library ceiling).
    """

    name: str
    n_cores: int
    freq_hz: float
    flops_per_cycle_per_core: float
    mem_bandwidth: float
    #: efficiency of a single getrf at size -> fraction of core peak
    eff_floor: float = 0.02
    eff_ceiling: float = 0.24
    eff_halfsize: float = 350.0
    per_call_overhead: float = 1.5e-6

    @property
    def peak_flops(self) -> float:
        return self.n_cores * self.freq_hz * self.flops_per_cycle_per_core

    def getrf_efficiency(self, n: float) -> float:
        """Fraction of per-core peak achieved by one getrf of order ``n``."""
        if n <= 0:
            return self.eff_floor
        rise = n / (n + self.eff_halfsize)
        return self.eff_floor + (self.eff_ceiling - self.eff_floor) * rise


def A100() -> DeviceSpec:
    """NVIDIA A100-SXM4-80GB (CUDA 11.6 era), as used in the paper."""
    return DeviceSpec(
        name="A100-SXM4",
        n_sm=108,
        shared_mem_per_sm=192 * _KB,
        max_shared_per_block=163 * _KB,
        peak_flops_fp64=9.7e12,     # non-tensor FP64, quoted in the paper
        mem_bandwidth=1.9e12,
        memory_capacity=80 * _GB,
        launch_overhead_host=4.0e-6,
        launch_overhead_device=2.0e-6,
        kernel_efficiency={
            # asymptotic fraction of peak for each kernel family; the
            # irr* kernels are generic (no Tensor Cores) so they cap lower
            # than the vendor GEMM, reproducing Fig 14's hybrid switch.
            "gemm_vendor": 0.88,
            "gemm_irr": 0.62,
            "trsm_irr": 0.50,
            "trsm_magma": 0.50,
            "getf2": 0.35,
            "getf2_interleaved": 0.55,
            "solver_vendor": 0.70,
            "swap": 0.85,
            "default": 0.50,
        },
    )


def MI100() -> DeviceSpec:
    """AMD Instinct MI100 (ROCm 5.0 era), as used in the paper.

    Differences that matter for the reproduction, called out in §V-A:
    smaller LDS (64 KB) limits occupancy of shared-memory kernels and
    forces an earlier fused-panel fallback, the HIP toolchain delivers a
    lower fraction of peak for the handwritten kernels, and launch
    overheads are higher.
    """
    return DeviceSpec(
        name="MI100",
        n_sm=120,
        shared_mem_per_sm=64 * _KB,
        max_shared_per_block=64 * _KB,
        peak_flops_fp64=11.5e12,    # quoted in the paper
        mem_bandwidth=1.2e12,
        memory_capacity=32 * _GB,
        launch_overhead_host=9.0e-6,
        launch_overhead_device=4.0e-6,
        kernel_efficiency={
            "gemm_vendor": 0.80,
            "gemm_irr": 0.40,
            "trsm_irr": 0.30,
            "trsm_magma": 0.30,
            "getf2": 0.20,
            "getf2_interleaved": 0.40,
            "solver_vendor": 0.55,
            "swap": 0.70,
            "default": 0.35,
        },
    )


def XEON_6140_2S() -> CpuSpec:
    """Dual-socket 18-core Intel Xeon Gold 6140 @ 2.3 GHz (MKL baseline).

    32 FP64 flops/cycle/core = 2x AVX-512 FMA units; the sustained AVX-512
    frequency is below nominal, folded into the efficiency ceiling.
    """
    return CpuSpec(
        name="2x Xeon Gold 6140",
        n_cores=36,
        freq_hz=2.3e9,
        flops_per_cycle_per_core=32.0,
        mem_bandwidth=2 * 128e9,
    )
