"""Device memory: arrays that live on a simulated device.

A :class:`DeviceArray` is a thin wrapper around a NumPy array tagged with
the :class:`~repro.device.simulator.Device` that owns it.  Kernels perform
their numerics directly on the wrapped arrays (functional layer) while the
device accounts simulated time (timing layer).

Allocation is tracked against the device's memory capacity so that the
"as large as the GPU memory affords" boundary of irrLU-GPU is a real,
testable failure mode (:class:`DeviceOutOfMemory`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Device

__all__ = ["DeviceArray", "DeviceOutOfMemory", "pack_to_device"]


class DeviceOutOfMemory(MemoryError):
    """Raised when an allocation would exceed the device memory capacity."""


class DeviceArray:
    """An array resident in (simulated) device global memory.

    Supports the small surface the kernels need: shape/dtype inspection,
    slicing into *views* (views share the parent's allocation and are not
    charged again), and explicit round-trips to the host.  All arithmetic
    happens inside kernels via the ``.data`` NumPy array.
    """

    __slots__ = ("device", "data", "nbytes_owned", "_base")

    def __init__(self, device: "Device", data: np.ndarray,
                 base: "DeviceArray | None" = None):
        self.device = device
        self.data = data
        self._base = base
        self.nbytes_owned = 0 if base is not None else data.nbytes

    # -- construction -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def base(self) -> "DeviceArray | None":
        return self._base

    def view(self, key) -> "DeviceArray":
        """Return a sub-array view sharing this allocation (no copy)."""
        sub = self.data[key]
        if sub.base is None and sub.size and sub is not self.data:
            raise ValueError("view() produced a copy; use fancy-free slicing")
        return DeviceArray(self.device, sub, base=self._base or self)

    def __getitem__(self, key) -> "DeviceArray":
        return self.view(key)

    # -- host transfers ---------------------------------------------------
    def to_host(self) -> np.ndarray:
        """Copy to host (D2H); charges transfer time on the device clock."""
        self.device._account_transfer(self.data.nbytes)
        return np.array(self.data, copy=True)

    def copy_from_host(self, host: np.ndarray) -> "DeviceArray":
        """Copy host data into this array (H2D)."""
        host = np.asarray(host)
        if host.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch: device {self.data.shape} vs host {host.shape}")
        self.device._account_transfer(host.nbytes)
        self.data[...] = host
        return self

    def free(self) -> None:
        """Release this allocation back to the device."""
        if self._base is None and self.nbytes_owned:
            self.device._release(self.nbytes_owned)
            self.nbytes_owned = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeviceArray(device={self.device.spec.name!r}, "
                f"shape={self.data.shape}, dtype={self.data.dtype})")


def pack_to_device(device: "Device", blocks: Sequence[np.ndarray],
                   dtype=None) -> DeviceArray:
    """Stack equal-shape host blocks and upload them in ONE H2D transfer.

    Returns a ``(len(blocks), *block_shape)`` :class:`DeviceArray`.  A
    per-block ``from_host`` loop would charge the PCIE latency once per
    block; packing host-side first pays it once for the whole stack —
    the transfer pattern a pinned staging buffer gives a real solver.
    An empty ``blocks`` list or zero-sized blocks allocate without any
    transfer accounting (nothing crosses the bus).
    """
    if not blocks:
        stacked = np.empty((0, 0, 0), dtype=dtype or np.float64)
    else:
        stacked = np.stack([np.asarray(b, dtype=dtype) for b in blocks])
    device._claim(stacked.nbytes)
    if stacked.nbytes:
        device._account_transfer(stacked.nbytes)
    return DeviceArray(device, stacked)


def total_nbytes(shapes: Iterable[Sequence[int]], dtype) -> int:
    """Total bytes needed for a collection of array shapes."""
    itemsize = np.dtype(dtype).itemsize
    total = 0
    for shape in shapes:
        n = 1
        for s in shape:
            n *= int(s)
        total += n * itemsize
    return total
