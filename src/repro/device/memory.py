"""Device memory: arrays that live on a simulated device.

A :class:`DeviceArray` is a thin wrapper around a NumPy array tagged with
the :class:`~repro.device.simulator.Device` that owns it.  Kernels perform
their numerics directly on the wrapped arrays (functional layer) while the
device accounts simulated time (timing layer).

Allocation is tracked against the device's memory capacity so that the
"as large as the GPU memory affords" boundary of irrLU-GPU is a real,
testable failure mode (:class:`DeviceOutOfMemory`).  Accounting is
exception-safe: capacity is claimed *before* host buffers are built and
released on any construction failure, so a failed allocation or transfer
never strands bytes in ``device.allocated_bytes``.

Transfers are optionally integrity-checked: with verification enabled
(``device.verify_transfers``, on by default inside a
``device.fault_scope``) every H2D/D2H copy checksums the payload,
retries up to :data:`MAX_TRANSFER_ATTEMPTS` times on mismatch (each
retry re-pays the bus after an exponential backoff with deterministic
seeded jitter — ``Device.transfer_backoff`` — and is recorded with its
backoff in ``device.recovery_log``), and raises a typed
:class:`~repro.errors.TransferError` when the corruption persists.

Accounting is also *thread-safe*: claim, release and the
:meth:`DeviceArray.free` ownership hand-off all synchronize on the
owning device's memory lock, so concurrent service workers can
allocate/free against one device without corrupting (or over-committing)
``device.allocated_bytes``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..errors import TransferError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Device

__all__ = ["DeviceArray", "DeviceOutOfMemory", "pack_to_device",
           "validate_memory_budget", "MAX_TRANSFER_ATTEMPTS"]

#: Bounded retry budget for integrity-checked transfers: a transfer is
#: attempted at most this many times before a typed
#: :class:`~repro.errors.TransferError` is raised.
MAX_TRANSFER_ATTEMPTS = 4


class DeviceOutOfMemory(MemoryError):
    """Raised when an allocation would exceed the device memory capacity."""


def validate_memory_budget(memory_budget, *,
                           name: str = "memory_budget") -> int | None:
    """Validate a device memory budget; one message for every call site.

    ``None`` means "no budget" and passes through.  Anything else must
    be a positive integer number of bytes — zero, negative, boolean and
    fractional budgets all raise the same :class:`ValueError`, instead
    of each consumer (out-of-core planner, factor cache, solver) failing
    in its own divergent way downstream.
    """
    if memory_budget is None:
        return None
    if isinstance(memory_budget, bool) or \
            not isinstance(memory_budget, (int, np.integer)):
        raise ValueError(
            f"{name} must be None or a positive integer number of bytes, "
            f"got {memory_budget!r}")
    if memory_budget <= 0:
        raise ValueError(
            f"{name} must be None or a positive integer number of bytes, "
            f"got {memory_budget!r}")
    return int(memory_budget)


def _digest(data: np.ndarray) -> bytes:
    """Payload checksum (order-exact bytes digest)."""
    return hashlib.blake2b(data.tobytes(), digest_size=16).digest()


def _transfer_h2d(device: "Device", dest: np.ndarray, src: np.ndarray, *,
                  verify: bool, site: str, account_empty: bool = True
                  ) -> None:
    """Copy ``src`` into device-resident ``dest`` with bounded retries.

    Each attempt pays the bus (latency + bandwidth) exactly like the
    unchecked path; an installed fault injector may corrupt the landed
    payload, which verification detects and repairs by re-transferring.
    """
    want = _digest(src) if verify else None
    for attempt in range(1, MAX_TRANSFER_ATTEMPTS + 1):
        if src.nbytes or account_empty:
            device._account_transfer(src.nbytes)
        dest[...] = src
        if device._injector is not None and dest.size:
            device._injector.on_transfer("h2d", dest, site)
        if not verify or _digest(dest) == want:
            return
        if attempt >= MAX_TRANSFER_ATTEMPTS:
            raise TransferError(site, "h2d", attempt)
        backoff = device.transfer_backoff(attempt, site)
        device.recovery_log.record(
            "transfer-retry", site=site, attempt=attempt,
            detail=f"h2d corrupted; backoff {backoff * 1e6:.1f}us")


def _transfer_d2h(device: "Device", src: np.ndarray, *,
                  verify: bool, site: str) -> np.ndarray:
    """Copy device-resident ``src`` to a new host array, with retries."""
    want = _digest(src) if verify else None
    for attempt in range(1, MAX_TRANSFER_ATTEMPTS + 1):
        device._account_transfer(src.nbytes)
        out = np.array(src, copy=True)
        if device._injector is not None and out.size:
            device._injector.on_transfer("d2h", out, site)
        if not verify or _digest(out) == want:
            return out
        if attempt >= MAX_TRANSFER_ATTEMPTS:
            raise TransferError(site, "d2h", attempt)
        backoff = device.transfer_backoff(attempt, site)
        device.recovery_log.record(
            "transfer-retry", site=site, attempt=attempt,
            detail=f"d2h corrupted; backoff {backoff * 1e6:.1f}us")
    raise AssertionError("unreachable")  # pragma: no cover


class DeviceArray:
    """An array resident in (simulated) device global memory.

    Supports the small surface the kernels need: shape/dtype inspection,
    slicing into *views* (views share the parent's allocation and are not
    charged again), and explicit round-trips to the host.  All arithmetic
    happens inside kernels via the ``.data`` NumPy array.

    Also a context manager: ``with device.empty(...) as scratch: ...``
    frees the allocation on exit.  :meth:`free` is idempotent and safe
    on views (a view never owns bytes, so freeing it is a no-op).
    """

    __slots__ = ("device", "data", "nbytes_owned", "_base")

    def __init__(self, device: "Device", data: np.ndarray,
                 base: "DeviceArray | None" = None):
        self.device = device
        self.data = data
        self._base = base
        self.nbytes_owned = 0 if base is not None else data.nbytes

    # -- construction -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def base(self) -> "DeviceArray | None":
        return self._base

    @property
    def freed(self) -> bool:
        """True once this (owning) array released its allocation."""
        return self._base is None and self.nbytes_owned == 0 \
            and self.data.nbytes > 0

    def view(self, key) -> "DeviceArray":
        """Return a sub-array view sharing this allocation (no copy)."""
        sub = self.data[key]
        if sub.base is None and sub.size and sub is not self.data:
            raise ValueError("view() produced a copy; use fancy-free slicing")
        return DeviceArray(self.device, sub, base=self._base or self)

    def __getitem__(self, key) -> "DeviceArray":
        return self.view(key)

    # -- host transfers ---------------------------------------------------
    def to_host(self, *, verify: bool | None = None) -> np.ndarray:
        """Copy to host (D2H); charges transfer time on the device clock.

        ``verify=None`` follows ``device.verify_transfers``; ``True``
        forces checksummed transfer with bounded retries.
        """
        if verify is None:
            verify = self.device.verify_transfers
        return _transfer_d2h(self.device, self.data, verify=verify,
                             site="to_host")

    def copy_from_host(self, host: np.ndarray, *,
                       verify: bool | None = None) -> "DeviceArray":
        """Copy host data into this array (H2D), optionally checksummed."""
        host = np.asarray(host)
        if host.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch: device {self.data.shape} vs host {host.shape}")
        if verify is None:
            verify = self.device.verify_transfers
        _transfer_h2d(self.device, self.data, host, verify=verify,
                      site="copy_from_host")
        return self

    def free(self) -> None:
        """Release this allocation back to the device (idempotent).

        Safe under concurrent callers: the owned-byte count is claimed
        and zeroed under the device's memory lock, so two racing
        ``free()`` calls release exactly once (the lock is re-entrant,
        so the nested ``_release`` does not deadlock).
        """
        if self._base is not None:
            return
        with self.device._mem_lock:
            owned, self.nbytes_owned = self.nbytes_owned, 0
            if owned:
                self.device._release(owned)

    # -- scoped lifetime --------------------------------------------------
    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeviceArray(device={self.device.spec.name!r}, "
                f"shape={self.data.shape}, dtype={self.data.dtype})")


def pack_to_device(device: "Device", blocks: Sequence[np.ndarray],
                   dtype=None) -> DeviceArray:
    """Stack equal-shape host blocks and upload them in ONE H2D transfer.

    Returns a ``(len(blocks), *block_shape)`` :class:`DeviceArray`.  A
    per-block ``from_host`` loop would charge the PCIE latency once per
    block; packing host-side first pays it once for the whole stack —
    the transfer pattern a pinned staging buffer gives a real solver.
    An empty ``blocks`` list or zero-sized blocks allocate without any
    transfer accounting (nothing crosses the bus).

    Capacity is claimed *before* the host stack is built and released if
    stacking or the transfer fails, so a mid-construction error leaves
    ``device.allocated_bytes`` untouched.
    """
    if not blocks:
        shape: tuple[int, ...] = (0, 0, 0)
        dt = np.dtype(dtype or np.float64)
    else:
        first = np.asarray(blocks[0])
        shape = (len(blocks),) + first.shape
        dt = np.dtype(dtype) if dtype is not None else \
            np.result_type(*(np.asarray(b).dtype for b in blocks))
    nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
    device._claim(nbytes, site="pack_to_device")
    try:
        if not blocks:
            stacked = np.empty(shape, dtype=dt)
        else:
            host = np.stack([np.asarray(b, dtype=dt) for b in blocks])
            stacked = np.empty(shape, dtype=dt)
            _transfer_h2d(device, stacked, host,
                          verify=device.verify_transfers,
                          site="pack_to_device", account_empty=False)
    except BaseException:
        device._release(nbytes)
        raise
    return DeviceArray(device, stacked)


def total_nbytes(shapes: Iterable[Sequence[int]], dtype) -> int:
    """Total bytes needed for a collection of array shapes."""
    itemsize = np.dtype(dtype).itemsize
    total = 0
    for shape in shapes:
        n = 1
        for s in shape:
            n *= int(s)
        total += n * itemsize
    return total
