"""Streams: FIFO execution queues on a simulated device.

Kernels launched into the same stream execute in order; kernels in
different streams may overlap on the device, subject to SM availability.
This is the mechanism the paper's baseline uses ("cuSOLVER called within
16 concurrent GPU streams") and the mechanism whose launch-serialization
cost the batched kernels avoid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from .kernel import LaunchRecord

__all__ = ["Stream", "Event"]


@dataclass
class Stream:
    """A FIFO kernel queue identified by an integer id."""

    sid: int
    #: records launched but not yet resolved by the simulator
    queue: Deque[LaunchRecord] = field(default_factory=deque)
    #: completion time of the most recently *resolved* kernel
    tail: float = 0.0
    #: sequence number of the most recent launch into this stream
    last_seq: int = -1
    #: injected stall (seconds) delaying the next resolution of this
    #: stream's kernel chain; consumed (reset to 0) by the simulator
    pending_stall: float = 0.0

    def push(self, rec: LaunchRecord) -> None:
        self.queue.append(rec)
        self.last_seq = rec.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stream(sid={self.sid}, pending={len(self.queue)})"


@dataclass
class Event:
    """A cross-stream synchronization marker (cudaEvent semantics).

    ``Device.record_event(stream)`` captures the stream's position; a
    kernel launched with ``wait_events=[e]`` cannot start before every
    kernel recorded ahead of ``e`` has completed.  This is the mechanism
    the paper's §VI extension needs to overlap independent kernels (e.g.
    the left and right row interchanges) on separate streams.
    """

    stream: int
    #: sequence number of the last launch in the stream at record time
    #: (-1 = nothing recorded: already complete)
    seq: int = -1
    #: completion time, filled in by the simulator (NaN until resolved)
    completed_at: float = float("nan")

    @property
    def resolved(self) -> bool:
        return self.completed_at == self.completed_at  # not NaN
