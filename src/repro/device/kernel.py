"""Kernel cost descriptors and roofline timing.

Every simulated kernel returns a :class:`KernelCost` describing the work it
performed (flops, bytes moved) and its launch geometry (blocks,
threads/block, shared memory/block).  The device turns this into an
*intrinsic duration* with a roofline model:

``duration = max(flops / (eff_c * peak * sm_frac),
                 bytes / (eff_m * bandwidth * bw_frac))
            + launch_overhead_device``

where ``sm_frac`` is the fraction of the device's SMs the kernel can
occupy given its block count and occupancy limits, and ``bw_frac``
reflects that a handful of SMs cannot saturate HBM.  The efficiency
factors ``eff_c`` / ``eff_m`` are per-kernel-family asymptotes from the
:class:`~repro.device.spec.DeviceSpec`, optionally scaled by a size-
dependent ramp supplied in the cost (small GEMMs don't hit the GEMM
ceiling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .spec import DeviceSpec

__all__ = ["KernelCost", "LaunchRecord", "intrinsic_duration", "sm_demand",
           "gemm_compute_ramp", "PEAK_SCALE", "peak_scale_for"]

#: Arithmetic-peak multiplier per data type relative to FP64 (the single
#: source of truth — the bucketed engine's ``IrrBatch.peak_scale`` and
#: the compiled programs' cost lowering both read this table, so a new
#: dtype cannot drift between the two cost paths).  FP32 doubles the
#: peak on A100/MI100-class hardware; complex arithmetic costs ~4 real
#: operations per counted flop, so complex128 runs at a quarter of the
#: FP64 rate and complex64 at half.
PEAK_SCALE = {
    "f4": 2.0,      # float32
    "f8": 1.0,      # float64
    "c8": 0.5,      # complex64
    "c16": 0.25,    # complex128
}


def peak_scale_for(dtype) -> float:
    """The :data:`PEAK_SCALE` entry for a numpy dtype.

    Raises :class:`KeyError` for dtypes outside the supported set —
    callers validate their dtypes first (``IrrBatch`` rejects anything
    but float32/float64/complex64/complex128 at construction).
    """
    dt = np.dtype(dtype)
    return PEAK_SCALE[f"{dt.kind}{dt.itemsize}"]


@dataclass
class KernelCost:
    """Work and geometry of one kernel launch.

    Attributes
    ----------
    flops:
        Floating-point operations performed (exact expressions, low-order
        terms kept, per §III-B of the paper).
    bytes_read, bytes_written:
        Global-memory traffic generated.
    blocks:
        Thread blocks in the grid.  Batched kernels launch roughly one
        block (row) per matrix; single-matrix kernels in the streamed
        baseline launch few blocks and therefore occupy few SMs.
    threads_per_block:
        Block size (occupancy input).
    shared_mem_per_block:
        Dynamic shared memory per block in bytes.  Drives occupancy and
        the fused-panel capacity check.
    kernel_class:
        Efficiency family looked up in ``DeviceSpec.kernel_efficiency``
        (e.g. ``"gemm_irr"``, ``"gemm_vendor"``, ``"trsm_irr"``).
    compute_ramp, memory_ramp:
        Size-dependent multipliers in (0, 1] applied on top of the family
        asymptote; 1.0 means "at the asymptote".
    """

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    blocks: int = 1
    threads_per_block: int = 256
    shared_mem_per_block: int = 0
    kernel_class: str = "default"
    compute_ramp: float = 1.0
    memory_ramp: float = 1.0
    #: arithmetic-peak multiplier for the kernel's data type relative to
    #: FP64 (2.0 for FP32 on A100/MI100-class hardware).
    peak_scale: float = 1.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def merged(self, other: "KernelCost") -> "KernelCost":
        """Combine two costs as if executed by one fused kernel."""
        return KernelCost(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            blocks=max(self.blocks, other.blocks),
            threads_per_block=max(self.threads_per_block,
                                  other.threads_per_block),
            shared_mem_per_block=max(self.shared_mem_per_block,
                                     other.shared_mem_per_block),
            kernel_class=self.kernel_class,
            compute_ramp=min(self.compute_ramp, other.compute_ramp),
            memory_ramp=min(self.memory_ramp, other.memory_ramp),
            peak_scale=min(self.peak_scale, other.peak_scale),
        )


@dataclass
class LaunchRecord:
    """One kernel launch in the device trace (filled in by the simulator)."""

    name: str
    stream: int
    cost: KernelCost
    seq: int
    host_issue: float = 0.0
    #: events this launch must wait for (cross-stream dependencies)
    wait_events: list = field(default_factory=list)
    start: float = math.nan
    end: float = math.nan
    sm_demand: int = 0
    intrinsic: float = 0.0
    remaining: float = field(default=0.0, repr=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


def sm_demand(cost: KernelCost, spec: DeviceSpec) -> int:
    """Number of SMs a kernel can productively occupy.

    A grid of ``b`` blocks with occupancy ``r`` blocks/SM spreads over
    ``ceil(b / r)`` SMs, capped by the device.  Returns at least 1 (a
    kernel whose shared-memory request is infeasible must be rejected by
    the caller before launch, see ``DeviceSpec.resident_blocks_per_sm``).
    """
    r = spec.resident_blocks_per_sm(cost.shared_mem_per_block,
                                    cost.threads_per_block)
    r = max(r, 1)
    return int(min(spec.n_sm, max(1, math.ceil(cost.blocks / r))))


def intrinsic_duration(cost: KernelCost, spec: DeviceSpec) -> float:
    """Roofline duration of a kernel given exclusive use of its SM share."""
    demand = sm_demand(cost, spec)
    sm_frac = demand / spec.n_sm
    bw_frac = min(1.0, sm_frac / spec.sm_bw_saturation_frac)

    eff_c = spec.efficiency(cost.kernel_class) * cost.compute_ramp
    eff_m = spec.efficiency("memory", default=0.80) * cost.memory_ramp

    t_compute = 0.0
    if cost.flops > 0:
        peak = spec.peak_flops_fp64 * cost.peak_scale
        t_compute = cost.flops / max(eff_c * peak * sm_frac, 1.0)
    t_memory = 0.0
    if cost.bytes_total > 0:
        t_memory = cost.bytes_total / max(eff_m * spec.mem_bandwidth * bw_frac,
                                          1.0)
    return max(t_compute, t_memory) + spec.launch_overhead_device


def gemm_compute_ramp(m: float, n: float, k: float,
                      halfsize: float = 24.0) -> float:
    """Size-dependent efficiency ramp for matrix-multiply-like kernels.

    Approaches 1 as the smallest dimension grows past ``halfsize``; tiny
    products are launch/memory-latency bound and achieve a small fraction
    of the family asymptote.  Used by GEMM, TRSM and the Schur-update
    kernels.
    """
    s = min(max(m, 1.0), max(n, 1.0), max(k, 1.0))
    return s / (s + halfsize)
