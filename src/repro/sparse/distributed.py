"""Distributed-memory multifrontal factorization (simulated MPI ranks).

§III-A: "for the distributed memory parallel code, the assembly tree is
split in multiple subtrees, each of which is assigned to a single MPI
rank and corresponding GPU, while the top log P levels of the tree are
distributed ... and then processed using either ScaLAPACK (CPU-only) or
SLATE."

The reproduction models exactly that decomposition:

* the top ``⌈log₂ P⌉`` levels of the assembly tree form the *distributed
  part*; the subtrees hanging below are assigned to ranks by
  longest-processing-time on their flop counts;
* each rank factors its subtrees on its own simulated GPU (the
  per-rank timelines run concurrently: local makespan = slowest rank);
* the subtree-root Schur complements are communicated to the top owner
  (a latency + bandwidth network model);
* the top part is factored with the batched kernels on the owner's GPU
  (the SLATE-like path) or with a ScaLAPACK-style CPU time model.

Numerics are identical to the single-device factorization — only the
schedule and the communication change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..analysis.flops import gemm_flops, getrf_flops, trsm_flops
from ..device.simulator import Device
from ..device.spec import DeviceSpec, XEON_6140_2S
from .numeric.factors import FrontFactors, MultifrontalFactors
from .numeric.gpu_factor import _chunk_levels, _factor_level
from .symbolic.analysis import SymbolicFactorization

__all__ = ["partition_tree", "RankAssignment",
           "multifrontal_factor_distributed", "DistributedFactorResult"]


@dataclass
class RankAssignment:
    """Which rank owns which front; -1 marks the distributed top part."""

    n_ranks: int
    rank_of_front: np.ndarray
    top_fronts: list[int]
    rank_fronts: list[list[int]]     # per rank, postorder
    rank_flops: list[float]

    @property
    def imbalance(self) -> float:
        """max/mean flop ratio across ranks (1.0 = perfect balance)."""
        nonzero = [f for f in self.rank_flops if f > 0]
        if not nonzero:
            return 1.0
        return max(nonzero) / (sum(nonzero) / len(nonzero))


def _front_flops(symb: SymbolicFactorization, fid: int) -> float:
    f = symb.fronts[fid]
    s, u = f.sep_size, f.upd_size
    return getrf_flops(s, s) + 2 * trsm_flops(s, u) + gemm_flops(u, u, s)


def partition_tree(symb: SymbolicFactorization,
                   n_ranks: int) -> RankAssignment:
    """Split the assembly tree: top ⌈log₂P⌉ levels + LPT subtrees."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    nf = len(symb.fronts)
    rank_of = np.full(nf, -1, dtype=np.int64)
    if n_ranks == 1:
        return RankAssignment(
            n_ranks=1, rank_of_front=np.zeros(nf, dtype=np.int64),
            top_fronts=[],
            rank_fronts=[list(range(nf))],
            rank_flops=[sum(_front_flops(symb, f) for f in range(nf))])

    top_levels = max(1, math.ceil(math.log2(n_ranks)))
    top = [fid for fid, f in enumerate(symb.fronts) if f.level < top_levels]
    top_set = set(top)

    # subtree roots: fronts below the top whose parent is in the top (or
    # absent) — each subtree goes to one rank as a unit.
    subtree_flops: dict[int, float] = {}
    subtree_fronts: dict[int, list[int]] = {}

    def collect(fid: int) -> tuple[float, list[int]]:
        f = symb.fronts[fid]
        fl = _front_flops(symb, fid)
        fronts = []
        for c in f.children:
            cf, cl = collect(c)
            fl += cf
            fronts.extend(cl)
        fronts.append(fid)
        return fl, fronts

    roots = [fid for fid, f in enumerate(symb.fronts)
             if fid not in top_set and
             (f.parent < 0 or f.parent in top_set)]
    for r in roots:
        subtree_flops[r], subtree_fronts[r] = collect(r)

    # LPT assignment of subtrees to ranks
    loads = [0.0] * n_ranks
    rank_fronts: list[list[int]] = [[] for _ in range(n_ranks)]
    for r in sorted(roots, key=lambda x: -subtree_flops[x]):
        dest = int(np.argmin(loads))
        loads[dest] += subtree_flops[r]
        rank_fronts[dest].extend(sorted(subtree_fronts[r]))
        for fid in subtree_fronts[r]:
            rank_of[fid] = dest
    for rf in rank_fronts:
        rf.sort()

    return RankAssignment(n_ranks=n_ranks, rank_of_front=rank_of,
                          top_fronts=sorted(top), rank_fronts=rank_fronts,
                          rank_flops=loads)


@dataclass
class DistributedFactorResult:
    """Factors plus the simulated distributed execution profile."""

    factors: MultifrontalFactors
    assignment: RankAssignment
    elapsed: float                  # end-to-end makespan
    per_rank_seconds: list[float] = field(default_factory=list)
    gather_seconds: float = 0.0
    top_seconds: float = 0.0
    comm_bytes: int = 0


def multifrontal_factor_distributed(
        spec: DeviceSpec, a_perm: sp.spmatrix,
        symb: SymbolicFactorization, n_ranks: int, *,
        strategy: str = "batched", top_mode: str = "slate",
        net_bandwidth: float = 25e9, net_latency: float = 5e-6,
        **kw) -> DistributedFactorResult:
    """Factor across ``n_ranks`` simulated rank-local GPUs.

    ``top_mode="slate"`` factors the distributed top part with the
    batched kernels on the owner rank's GPU (the SLATE-like GPU path);
    ``"scalapack"`` models the CPU-only 2D block-cyclic alternative.
    """
    if top_mode not in ("slate", "scalapack"):
        raise ValueError(f"unknown top_mode {top_mode!r}")
    a_perm = sp.csr_matrix(a_perm)
    assign = partition_tree(symb, n_ranks)

    host_factors: dict[int, FrontFactors] = {}
    host_schur: dict[int, np.ndarray] = {}

    def run_fronts(device: Device, fids: list[int]) -> float:
        """Factor one rank's fronts; stream results to the host store."""
        if not fids:
            return 0.0
        buffers: dict = {}
        pivots_of: dict = {}
        fid_set = set(fids)
        with device.timed_region() as region:
            for level_fids in _chunk_levels(symb, fids):
                _factor_level(device, a_perm, symb, level_fids, buffers,
                              pivots_of, strategy, kw.get("gemm_mode",
                                                          "hybrid"),
                              kw.get("hybrid_cutoff", 256),
                              kw.get("laswp_variant", "rehearsed"),
                              kw.get("nb", 32), host_schur=host_schur)
        for fid in fids:
            info = symb.fronts[fid]
            s = info.sep_size
            data = buffers[fid].to_host()
            host_factors[fid] = FrontFactors(
                f11=data[:s, :s].copy(), ipiv=pivots_of[fid],
                f12=data[:s, s:].copy(), f21=data[s:, :s].copy())
            if info.parent >= 0 and info.parent not in fid_set \
                    and info.upd_size:
                host_schur[fid] = data[s:, s:].copy()
            buffers[fid].free()
        return region["elapsed"]

    # --- phase 1: rank-local subtrees (concurrent timelines) -------------
    per_rank = []
    comm_bytes = 0
    rank_msgs = []
    for r in range(assign.n_ranks):
        dev = Device(spec)
        per_rank.append(run_fronts(dev, assign.rank_fronts[r]))
        # this rank's boundary Schur contributions travel to the top owner
        nbytes = sum(host_schur[f].nbytes
                     for f in assign.rank_fronts[r] if f in host_schur)
        comm_bytes += nbytes
        rank_msgs.append((nbytes, sum(1 for f in assign.rank_fronts[r]
                                      if f in host_schur)))

    gather_seconds = max(
        (nb / net_bandwidth + cnt * net_latency
         for nb, cnt in rank_msgs), default=0.0)

    # --- phase 2: the distributed top part -------------------------------
    top_seconds = 0.0
    if assign.top_fronts:
        if top_mode == "slate":
            dev_top = Device(spec)
            top_seconds = run_fronts(dev_top, assign.top_fronts)
        else:
            # ScaLAPACK model: CPU-only 2D block-cyclic over all ranks.
            cpu = XEON_6140_2S()
            flops = sum(_front_flops(symb, f) for f in assign.top_fronts)
            rate = assign.n_ranks * 16 * cpu.freq_hz * \
                cpu.flops_per_cycle_per_core
            eff = cpu.getrf_efficiency(
                max(symb.fronts[f].order for f in assign.top_fronts))
            top_seconds = flops / (rate * max(eff, 1e-3))
            # the CPU path still needs the numerics: run them untimed
            dev_top = Device(spec)
            run_fronts(dev_top, assign.top_fronts)

    out = MultifrontalFactors(symb=symb)
    out.fronts = [host_factors[fid] for fid in range(len(symb.fronts))]
    elapsed = (max(per_rank, default=0.0) + gather_seconds + top_seconds)
    return DistributedFactorResult(
        factors=out, assignment=assign, elapsed=elapsed,
        per_rank_seconds=per_rank, gather_seconds=gather_seconds,
        top_seconds=top_seconds, comm_bytes=comm_bytes)
