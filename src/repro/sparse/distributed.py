"""Distributed-memory multifrontal factorization (simulated MPI ranks).

§III-A: "for the distributed memory parallel code, the assembly tree is
split in multiple subtrees, each of which is assigned to a single MPI
rank and corresponding GPU, while the top log P levels of the tree are
distributed ... and then processed using either ScaLAPACK (CPU-only) or
SLATE."

This module is now a thin compatibility wrapper over the sharded
multi-device subsystem (:mod:`repro.sparse.numeric.shard`): ranks map to
the member devices of a :class:`~repro.device.node.Node` whose
device↔device link models the network (``net_bandwidth`` /
``net_latency``), and the factorization itself — level transactions,
batch engines, the pivot policy and the recovery ladder — is exactly
the sharded path.  Folding the two removed an old drift: the
distributed ``run_fronts`` used to call the level kernels without the
pivot-policy kwargs, silently reverting to pre-report ``== 0.0`` pivot
semantics and producing no :class:`FactorReport`; the policy now
threads through unchanged and ``factors.report`` is always attached.

The result keeps the historical MPI-flavoured accounting: ``elapsed``
is ``max(per-rank) + gather + top`` with a per-rank message model
(every rank's boundary bytes pay the network, including the owner's
own — an MPI rank has no shortcut to the top owner's GPU), which is
intentionally *more* pessimistic than the node makespan reported by
:class:`~repro.sparse.numeric.shard.ShardedFactorResult`.

Numerics are identical to the single-device factorization — only the
schedule and the communication change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import scipy.sparse as sp

from ..device.node import Link, Node
from ..device.spec import DeviceSpec
from .numeric.factors import MultifrontalFactors
from .numeric.report import FactorReport
from .numeric.shard import RankAssignment, multifrontal_factor_sharded, \
    partition_tree
from .symbolic.analysis import SymbolicFactorization

__all__ = ["partition_tree", "RankAssignment",
           "multifrontal_factor_distributed", "DistributedFactorResult"]


@dataclass
class DistributedFactorResult:
    """Factors plus the simulated distributed execution profile."""

    factors: MultifrontalFactors
    assignment: RankAssignment
    elapsed: float                  # end-to-end makespan
    per_rank_seconds: list[float] = field(default_factory=list)
    gather_seconds: float = 0.0
    top_seconds: float = 0.0
    comm_bytes: int = 0
    report: "FactorReport | None" = None


def multifrontal_factor_distributed(
        spec: DeviceSpec, a_perm: sp.spmatrix,
        symb: SymbolicFactorization, n_ranks: int, *,
        strategy: str = "batched", top_mode: str = "slate",
        net_bandwidth: float = 25e9, net_latency: float = 5e-6,
        **kw) -> DistributedFactorResult:
    """Factor across ``n_ranks`` simulated rank-local GPUs.

    ``top_mode="slate"`` factors the distributed top part with the
    batched kernels on the owner rank's GPU (the SLATE-like GPU path);
    ``"scalapack"`` models the CPU-only 2D block-cyclic alternative.
    Pivot-policy and engine kwargs (``pivot_tol``, ``static_pivot``,
    ``replace_scale``, ``breakdown``, ``engine``, ...) pass through to
    the sharded factorization unchanged.
    """
    if top_mode not in ("slate", "scalapack"):
        raise ValueError(f"unknown top_mode {top_mode!r}")
    node = Node(spec, n_ranks,
                p2p_link=Link(bandwidth=net_bandwidth, latency=net_latency))
    res = multifrontal_factor_sharded(
        node, a_perm, symb, strategy=strategy, top_mode=top_mode, **kw)

    # The MPI-flavoured network accounting: each rank ships its boundary
    # Schur bytes as one stream of messages; ranks send concurrently, so
    # the gather costs the slowest rank's stream.
    gather_seconds = max(
        (nb / net_bandwidth + cnt * net_latency
         for nb, cnt in res.rank_link_stats), default=0.0)
    comm_bytes = sum(nb for nb, _ in res.rank_link_stats)
    elapsed = (max(res.per_device_seconds, default=0.0) + gather_seconds +
               res.top_seconds)
    return DistributedFactorResult(
        factors=res.factors, assignment=res.assignment, elapsed=elapsed,
        per_rank_seconds=res.per_device_seconds,
        gather_seconds=gather_seconds, top_seconds=res.top_seconds,
        comm_bytes=comm_bytes, report=res.report)
