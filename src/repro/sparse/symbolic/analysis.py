"""Symbolic factorization: fronts, update sets, level sets (§III-A).

Given the permuted matrix pattern and the separator tree, compute for
every tree node its frontal-matrix structure:

* the *separator* indices (the pivot block F11) — the contiguous new-index
  range the ordering assigned to the node, and
* the *update* set ``upd`` — the ancestor indices the front's Schur
  complement touches: ancestors directly connected to the separator in
  ``A``, united with whatever the children's update sets pass up.

Nested dissection guarantees every update index exceeds the subtree's
index range (separators shield subtrees from their siblings), which makes
the update sets well-defined sorted integer arrays.

The analysis also produces the *level sets* the GPU factorization batches
over (all fronts of one tree level are independent, §III-A), and the
aggregate statistics Fig 13 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..ordering.nested_dissection import NestedDissection, SeparatorTreeNode

__all__ = ["FrontInfo", "SymbolicFactorization", "symbolic_analysis"]


@dataclass
class FrontInfo:
    """Structure of one frontal matrix (indices in the permuted order)."""

    node: SeparatorTreeNode
    level: int
    #: separator (pivot-block) indices: arange(sep_begin, sep_end)
    sep_begin: int
    sep_end: int
    #: sorted ancestor indices updated by this front's Schur complement
    upd: np.ndarray
    children: list[int] = field(default_factory=list)
    parent: int = -1

    @property
    def sep_size(self) -> int:
        return self.sep_end - self.sep_begin

    @property
    def upd_size(self) -> int:
        return len(self.upd)

    @property
    def order(self) -> int:
        """Total frontal-matrix dimension |sep| + |upd|."""
        return self.sep_size + self.upd_size

    @property
    def indices(self) -> np.ndarray:
        """All global (permuted) indices of the front, sep first."""
        return np.concatenate([
            np.arange(self.sep_begin, self.sep_end, dtype=np.int64),
            self.upd])


@dataclass
class SymbolicFactorization:
    """Complete symbolic structure consumed by the numeric phases."""

    fronts: list[FrontInfo]          # postorder
    root: int                        # index of the root front
    n: int

    def levels(self) -> list[list[int]]:
        """Front ids grouped by tree level, deepest level first.

        This is the batching schedule: each inner list is one batch of
        independent fronts.
        """
        if not self.fronts:
            return []
        maxlev = max(f.level for f in self.fronts)
        out: list[list[int]] = [[] for _ in range(maxlev + 1)]
        for fid, f in enumerate(self.fronts):
            out[maxlev - f.level].append(fid)
        return out

    def level_statistics(self) -> list[dict]:
        """Per-level batch size and front-size distribution (Fig 13)."""
        stats = []
        maxlev = max(f.level for f in self.fronts)
        for depth_from_bottom, fids in enumerate(self.levels()):
            sizes = np.array([self.fronts[f].order for f in fids])
            stats.append({
                "level": maxlev - depth_from_bottom,
                "batch_size": len(fids),
                "min_size": int(sizes.min()),
                "mean_size": float(sizes.mean()),
                "max_size": int(sizes.max()),
            })
        return stats

    def factor_nonzeros(self) -> int:
        """Nonzeros in L+U stored by the fronts (sep rows/cols only)."""
        total = 0
        for f in self.fronts:
            s, u = f.sep_size, f.upd_size
            total += s * s + 2 * s * u
        return total

    def factor_flops(self) -> float:
        """Total factorization flops (LU + two TRSMs + GEMM per front)."""
        from ...analysis.flops import gemm_flops, getrf_flops, trsm_flops
        total = 0.0
        for f in self.fronts:
            s, u = f.sep_size, f.upd_size
            total += getrf_flops(s, s) + 2 * trsm_flops(s, u) \
                + gemm_flops(u, u, s)
        return total


def symbolic_analysis(a_perm: sp.spmatrix,
                      nd: NestedDissection) -> SymbolicFactorization:
    """Compute front structures for the *permuted* matrix ``a_perm``.

    ``a_perm`` must already carry the nested-dissection permutation
    (``a_perm = A[perm][:, perm]`` with a symmetrized pattern for
    rectangular-front correctness).
    """
    a_perm = sp.csr_matrix(a_perm)
    n = a_perm.shape[0]
    if n != nd.n:
        raise ValueError("matrix size does not match the ordering")
    # Symmetrize so row structure covers column structure.
    pattern = ((a_perm != 0) + (a_perm != 0).T).tocsr()
    indptr, indices = pattern.indptr, pattern.indices

    fronts: list[FrontInfo] = []

    def visit(node: SeparatorTreeNode, level: int) -> int:
        child_ids = [visit(c, level + 1) for c in node.children]
        sep_begin, sep_end = node.sep_begin, node.hi

        upd_sets = [fronts[c].upd for c in child_ids]
        direct: set[int] = set()
        for r in range(sep_begin, sep_end):
            for c in indices[indptr[r]:indptr[r + 1]]:
                if c >= node.hi:
                    direct.add(int(c))
        merged = set(direct)
        for s in upd_sets:
            merged.update(int(x) for x in s if x >= node.hi)
        upd = np.array(sorted(merged), dtype=np.int64)

        fid = len(fronts)
        f = FrontInfo(node=node, level=level, sep_begin=sep_begin,
                      sep_end=sep_end, upd=upd, children=child_ids)
        for c in child_ids:
            fronts[c].parent = fid
        fronts.append(f)
        return fid

    root = visit(nd.tree, 0)
    return SymbolicFactorization(fronts=fronts, root=root, n=n)
