"""Symbolic analysis of the multifrontal factorization."""

from .analysis import FrontInfo, SymbolicFactorization, symbolic_analysis

__all__ = ["FrontInfo", "SymbolicFactorization", "symbolic_analysis"]
