"""SparseCholesky — the SPD multifrontal variant (Cholmod's niche, §II).

The paper's related work singles out Cholmod as the SPD-only supernodal
solver.  This module is the multifrontal Cholesky counterpart of
:class:`~repro.sparse.solver.SparseLU`, sharing the ordering and symbolic
machinery and swapping the per-front numerics:

* ``F₁₁ = L₁₁·L₁₁ᵀ`` (batched ``irrPOTRF`` on the GPU path),
* ``L₂₁ = F₂₁·L₁₁⁻ᵀ`` (``irrTRSM``, right/lower/transposed),
* ``S = F₂₂ − L₂₁·L₂₁ᵀ`` (``irrGEMM`` in SYRK shape).

No pivoting, no row interchanges — for SPD systems the diagonal pivots
are always safe, which removes the LASWP machinery entirely (the reason
Cholesky fronts batch so well).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ..batched.gemm import irr_gemm
from ..batched.interface import IrrBatch
from ..batched.potrf import NotPositiveDefiniteError, irr_potrf
from ..batched.trsm import irr_trsm
from ..device.simulator import Device
from .numeric.factors import assemble_front
from .numeric.gpu_factor import GpuFactorResult, _assemble_level
from .ordering.nested_dissection import DEFAULT_LEAF_SIZE, nested_dissection
from .solver import SolveInfo
from .symbolic.analysis import SymbolicFactorization, symbolic_analysis

__all__ = ["SparseCholesky", "CholeskyFactors"]


@dataclass
class CholeskyFactors:
    """Per-front lower factors: ``l11`` (dense lower) and ``l21``."""

    symb: SymbolicFactorization
    l11: list[np.ndarray] = field(default_factory=list)
    l21: list[np.ndarray] = field(default_factory=list)


def _factor_front(F: np.ndarray, s: int) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
    """Cholesky-eliminate the leading s×s block of one dense front."""
    try:
        l11 = np.linalg.cholesky(F[:s, :s]) if s else F[:s, :s]
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc
    if F.shape[0] > s and s:
        l21 = sla.solve_triangular(l11, F[s:, :s].T, lower=True,
                                   check_finite=False).T
        schur = F[s:, s:] - l21 @ l21.T
    else:
        l21 = F[s:, :s].copy()
        schur = np.array(F[s:, s:], copy=True)
    return l11, l21, schur


def _factor_cpu(a_perm: sp.csr_matrix,
                symb: SymbolicFactorization) -> CholeskyFactors:
    schur: list = [None] * len(symb.fronts)
    out = CholeskyFactors(symb=symb)
    for fid, info in enumerate(symb.fronts):
        contribs = [schur[c] for c in info.children]
        for c in info.children:
            schur[c] = None
        F = assemble_front(a_perm, info, [x for x in contribs if x])
        l11, l21, S = _factor_front(F, info.sep_size)
        out.l11.append(l11)
        out.l21.append(l21)
        if info.parent >= 0:
            schur[fid] = (S, info.upd)
    return out


def _factor_gpu(device: Device, a_perm: sp.csr_matrix,
                symb: SymbolicFactorization, nb: int
                ) -> tuple[CholeskyFactors, GpuFactorResult]:
    buffers: dict = {}
    with device.timed_region() as region:
        for fids in symb.levels():
            for fid in fids:
                info = symb.fronts[fid]
                buffers[fid] = device.zeros((info.order, info.order),
                                            dtype=a_perm.dtype)
            _assemble_level(device, a_perm, symb, fids, buffers)

            s_vec = np.array([symb.fronts[f].sep_size for f in fids],
                             dtype=np.int64)
            u_vec = np.array([symb.fronts[f].upd_size for f in fids],
                             dtype=np.int64)
            f11 = IrrBatch(device, [buffers[f][:s, :s] for f, s in
                                    zip(fids, s_vec)], s_vec, s_vec)
            f21 = IrrBatch(device, [buffers[f][s:, :s] for f, s in
                                    zip(fids, s_vec)], u_vec, s_vec)
            f22 = IrrBatch(device, [buffers[f][s:, s:] for f, s in
                                    zip(fids, s_vec)], u_vec, u_vec)
            irr_potrf(device, f11, nb=nb)
            smax, umax = int(s_vec.max()), int(u_vec.max())
            if smax and umax:
                irr_trsm(device, "R", "L", "T", "N", umax, smax, 1.0,
                         f11, (0, 0), f21, (0, 0), name="irrpotrf:trsm")
                irr_gemm(device, "N", "T", umax, umax, smax, -1.0,
                         f21, (0, 0), f21, (0, 0), 1.0, f22, (0, 0),
                         name="irrsyrk")

    out = CholeskyFactors(symb=symb)
    for fid, info in enumerate(symb.fronts):
        s = info.sep_size
        data = buffers[fid].to_host()
        out.l11.append(np.tril(data[:s, :s]))
        out.l21.append(data[s:, :s].copy())
        buffers[fid].free()
    counters = {k: region[k] for k in region if k != "elapsed"}
    res = GpuFactorResult(factors=None, elapsed=region["elapsed"],
                          counters=counters,
                          breakdown=device.profiler.by_prefix())
    return out, res


def _solve(factors: CholeskyFactors, b: np.ndarray) -> np.ndarray:
    symb = factors.symb
    x = np.array(b, dtype=np.float64, copy=True)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != symb.n:
        raise ValueError(
            f"right-hand side has {x.shape[0]} rows, expected {symb.n}")
    for fid, info in enumerate(symb.fronts):       # forward: L y = b
        s = info.sep_size
        if s == 0:
            continue
        sl = slice(info.sep_begin, info.sep_end)
        x[sl] = sla.solve_triangular(factors.l11[fid], x[sl], lower=True,
                                     check_finite=False)
        if info.upd_size:
            x[info.upd, :] -= factors.l21[fid] @ x[sl]
    for fid in range(len(symb.fronts) - 1, -1, -1):  # backward: L^T x = y
        info = symb.fronts[fid]
        s = info.sep_size
        if s == 0:
            continue
        sl = slice(info.sep_begin, info.sep_end)
        rhs = x[sl]
        if info.upd_size:
            rhs = rhs - factors.l21[fid].T @ x[info.upd, :]
        x[sl] = sla.solve_triangular(factors.l11[fid].T, rhs, lower=False,
                                     check_finite=False)
    return x[:, 0] if squeeze else x


class SparseCholesky:
    """Multifrontal sparse Cholesky for SPD matrices.

    The same three-phase pipeline as :class:`SparseLU` minus MC64 and
    pivoting (neither is needed for SPD systems).
    """

    def __init__(self, a: sp.spmatrix, *,
                 leaf_size: int = DEFAULT_LEAF_SIZE):
        a = sp.csr_matrix(a).astype(np.float64)
        if a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        if abs(a - a.T).max() > 1e-10 * max(abs(a).max(), 1e-300):
            raise ValueError("matrix must be symmetric")
        self.a = a
        self.leaf_size = leaf_size
        self._analyzed = False
        self._factored = False
        self.factor_result: GpuFactorResult | None = None

    def analyze(self) -> "SparseCholesky":
        self.nd = nested_dissection(self.a, leaf_size=self.leaf_size)
        self.a_perm = self.a[self.nd.perm][:, self.nd.perm].tocsr()
        self.symb = symbolic_analysis(self.a_perm, self.nd)
        self._analyzed = True
        return self

    def factor(self, *, backend: str = "cpu",
               device: Device | None = None, nb: int = 32
               ) -> "SparseCholesky":
        if not self._analyzed:
            self.analyze()
        if backend == "cpu":
            self.factors = _factor_cpu(self.a_perm, self.symb)
            self.factor_result = None
        elif backend == "batched":
            if device is None:
                raise ValueError("backend 'batched' needs a device")
            self.factors, self.factor_result = _factor_gpu(
                device, self.a_perm, self.symb, nb)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self._factored = True
        return self

    def solve(self, b: np.ndarray, *, refine_steps: int = 1
              ) -> tuple[np.ndarray, SolveInfo]:
        if not self._factored:
            raise RuntimeError("factor() must run before solve()")
        b = np.asarray(b, dtype=np.float64)

        def once(rhs):
            z = _solve(self.factors, rhs[self.nd.perm])
            y = np.empty_like(z)
            y[self.nd.perm] = z
            return y

        x = once(b)
        info = SolveInfo()
        denom = float(np.linalg.norm(b)) or 1.0
        info.residuals.append(
            float(np.linalg.norm(b - self.a @ x) / denom))
        for _ in range(refine_steps):
            x = x + once(b - self.a @ x)
            info.residuals.append(
                float(np.linalg.norm(b - self.a @ x) / denom))
        return x, info
