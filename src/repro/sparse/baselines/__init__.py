"""Comparator solvers for Table I.

* ``naive_loop_factor`` — cuBLAS/cuSOLVER called in a loop per front.
* ``strumpack_like_factor`` — STRUMPACK v6.3.1's naive ≤32×32 batch
  kernels plus per-operation synchronization.
* ``superlu_like_factor`` — SuperLU_Dist-style CPU panels + GPU GEMMs.
"""

from __future__ import annotations

import scipy.sparse as sp

from ...device.simulator import Device
from ..numeric.gpu_factor import GpuFactorResult, multifrontal_factor_gpu
from ..symbolic.analysis import SymbolicFactorization
from .superlu_like import superlu_like_factor

__all__ = ["naive_loop_factor", "strumpack_like_factor",
           "superlu_like_factor"]


def naive_loop_factor(device: Device, a_perm: sp.spmatrix,
                      symb: SymbolicFactorization, **kw) -> GpuFactorResult:
    """The "trivial implementation calling cuBLAS or cuSOLVER in a loop"
    (Fig 14 / Table I)."""
    return multifrontal_factor_gpu(device, a_perm, symb,
                                   strategy="looped", **kw)


def strumpack_like_factor(device: Device, a_perm: sp.spmatrix,
                          symb: SymbolicFactorization,
                          **kw) -> GpuFactorResult:
    """STRUMPACK v6.3.1 model: naive small-front batch kernels, looped
    large fronts, synchronization after every operation (Table I)."""
    return multifrontal_factor_gpu(device, a_perm, symb,
                                   strategy="strumpack", **kw)
