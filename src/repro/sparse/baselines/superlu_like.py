"""SuperLU_Dist-style baseline: supernodal right-looking, partial offload.

The paper's fourth comparator (Table I) is SuperLU_Dist 7.2's
``pdgssvx3d``, which "offloads more operations to the GPU" but still
factors panels on the CPU and launches per-supernode GEMMs.  We model
that schedule on the same assembly-tree structure: per front, the panel
factorization runs on the host (16-thread CPU model), panels transfer to
the device, and the Schur update is a vendor GEMM — capturing why it
trails the fully batched solver on workloads dominated by many small
fronts.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...analysis.flops import getrf_flops, trsm_flops
from ...batched.vendor import vendor_gemm
from ...device.simulator import Device
from ...device.spec import CpuSpec, XEON_6140_2S
from ...errors import FactorizationError
from ..numeric.cpu_factor import factor_front_blocks
from ..numeric.factors import MultifrontalFactors, assemble_front
from ..numeric.gpu_factor import GpuFactorResult
from ..numeric.report import FactorReport
from ..symbolic.analysis import SymbolicFactorization

__all__ = ["superlu_like_factor"]


def _panel_seconds(s: int, order: int, cpu: CpuSpec, threads: int) -> float:
    """Host time to factor one s-wide panel of an order-sized front."""
    flops = getrf_flops(order, s) + 2 * trsm_flops(s, max(order - s, 0))
    cores = min(threads, cpu.n_cores)
    rate = cores * cpu.freq_hz * cpu.flops_per_cycle_per_core
    eff = cpu.getrf_efficiency(s) * 0.35  # panel path parallelizes poorly
    return cpu.per_call_overhead + flops / (rate * max(eff, 1e-3))


def superlu_like_factor(device: Device, a_perm: sp.spmatrix,
                        symb: SymbolicFactorization, *,
                        cpu: CpuSpec | None = None,
                        threads: int = 16,
                        pivot_tol: float = 0.0,
                        static_pivot: bool = False,
                        replace_scale: float | None = None,
                        breakdown: str = "raise") -> GpuFactorResult:
    """Factor with the SuperLU-style CPU-panel + GPU-GEMM schedule."""
    if breakdown not in ("raise", "report"):
        raise ValueError(f"unknown breakdown mode {breakdown!r}; "
                         "choose 'raise' or 'report'")
    a_perm = sp.csr_matrix(a_perm)
    cpu = cpu or XEON_6140_2S()
    out = MultifrontalFactors(symb=symb)
    out.fronts = [None] * len(symb.fronts)  # type: ignore[list-item]
    schur: list = [None] * len(symb.fronts)

    with device.timed_region() as region:
        for fid, info in enumerate(symb.fronts):
            contribs = [schur[c] for c in info.children]
            for c in info.children:
                schur[c] = None
            F = assemble_front(a_perm, info, [x for x in contribs if x])
            s, u = info.sep_size, info.upd_size

            # CPU panel factorization + triangular solves.
            device.host_compute(_panel_seconds(s, info.order, cpu, threads))
            fac, S = factor_front_blocks(
                F, s, pivot_tol=pivot_tol, static_pivot=static_pivot,
                replace_scale=replace_scale, raise_on_breakdown=False)
            out.fronts[fid] = fac

            if u:
                # H2D for the panel blocks, GEMM on the device, D2H Schur.
                device._account_transfer((s * u * 2) * 8)
                S[...] = F[s:, s:]
                vendor_gemm(device, "N", "N", -1.0, fac.f21, fac.f12,
                            1.0, S, name="cublas_gemm:schur")
                device.synchronize()
                device._account_transfer(u * u * 8)
            if info.parent >= 0:
                schur[fid] = (S, info.upd)

    out.report = FactorReport.from_factors(
        out, pivot_tol=pivot_tol, static_pivot=static_pivot,
        replace_scale=replace_scale)
    if breakdown == "raise" and not out.report.ok:
        raise FactorizationError(out.report.summary(), out.report)
    counters = {k: region[k] for k in region if k != "elapsed"}
    return GpuFactorResult(factors=out, elapsed=region["elapsed"],
                           counters=counters, report=out.report,
                           breakdown=device.profiler.by_prefix())
