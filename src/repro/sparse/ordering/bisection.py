"""Graph bisection with vertex separators.

The METIS substitute: a BFS (level-set) bisection from a pseudo-peripheral
vertex, followed by extraction of a vertex separator from the edge cut.
For the quasi-regular graphs of FE discretizations this yields geometric
separators of the right asymptotic size (O(n²) for n³-cell meshes), which
is all the multifrontal front-size distribution depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graph import bfs_levels, pseudo_peripheral_vertex

__all__ = ["Bisection", "bisect"]


@dataclass
class Bisection:
    """Result of one vertex-separator bisection.

    ``part_a``/``part_b`` are disjoint from ``separator`` and from each
    other, their union is the input vertex set, and no edge joins
    ``part_a`` to ``part_b`` directly.
    """

    part_a: np.ndarray
    part_b: np.ndarray
    separator: np.ndarray


def bisect(g: sp.csr_matrix, vertices: np.ndarray) -> Bisection:
    """Split ``vertices`` into two balanced halves plus a vertex separator.

    BFS levels from a pseudo-peripheral vertex are split at the median;
    the separator is the smaller boundary layer of the cut (vertices of
    one side adjacent to the other side).  Vertices unreachable from the
    start (disconnected pieces) are appended to the smaller part.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = len(vertices)
    if n < 2:
        return Bisection(part_a=vertices,
                         part_b=np.empty(0, dtype=np.int64),
                         separator=np.empty(0, dtype=np.int64))

    mask = np.zeros(g.shape[0], dtype=bool)
    mask[vertices] = True
    start = pseudo_peripheral_vertex(g, vertices)
    level = bfs_levels(g, start, mask)

    lv = level[vertices]
    reached = vertices[lv >= 0]
    unreached = vertices[lv < 0]
    rlv = level[reached]
    # Split level so that part A holds ~half the reached vertices.
    order = np.argsort(rlv, kind="stable")
    half = len(reached) // 2
    cut_level = int(rlv[order[min(half, len(reached) - 1)]])

    a_side = reached[level[reached] < cut_level]
    b_side = reached[level[reached] >= cut_level]
    if len(a_side) == 0:  # degenerate: everything on one level
        a_side = reached[:half]
        b_side = reached[half:]
        # With an arbitrary split we cannot use the level structure; take
        # the full boundary of the smaller side as separator.
        sep = _boundary(g, a_side, b_side, mask)
        a_set = np.setdiff1d(a_side, sep, assume_unique=False)
        b_set = np.setdiff1d(b_side, sep, assume_unique=False)
        return _finish(a_set, b_set, sep, unreached)

    # The first level of the B side is a vertex separator between
    # A = levels < cut and B' = levels > cut.
    sep = reached[level[reached] == cut_level]
    b_only = reached[level[reached] > cut_level]
    # Shrink the separator: keep only vertices actually adjacent to A.
    indptr, indices = g.indptr, g.indices
    amask = np.zeros(g.shape[0], dtype=bool)
    amask[a_side] = True
    keep = np.array([any(amask[w] for w in indices[indptr[v]:indptr[v + 1]])
                     for v in sep], dtype=bool)
    b_extra = sep[~keep]
    sep = sep[keep]
    b_only = np.concatenate([b_only, b_extra])
    return _finish(a_side, b_only, sep, unreached)


def _boundary(g: sp.csr_matrix, a_side: np.ndarray, b_side: np.ndarray,
              mask: np.ndarray) -> np.ndarray:
    bmask = np.zeros(g.shape[0], dtype=bool)
    bmask[b_side] = True
    indptr, indices = g.indptr, g.indices
    sep = [v for v in a_side
           if any(bmask[w] for w in indices[indptr[v]:indptr[v + 1]])]
    return np.array(sorted(sep), dtype=np.int64)


def _finish(a, b, sep, unreached) -> Bisection:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if len(unreached):
        if len(a) <= len(b):
            a = np.concatenate([a, unreached])
        else:
            b = np.concatenate([b, unreached])
    return Bisection(part_a=np.sort(a), part_b=np.sort(b),
                     separator=np.sort(np.asarray(sep, dtype=np.int64)))
