"""Fill-reducing orderings and static-pivoting preprocessing."""

from .bisection import Bisection, bisect
from .mc64 import Mc64Result, StructurallySingularError, mc64
from .mindeg import minimum_degree_order
from .nested_dissection import DEFAULT_LEAF_SIZE, NestedDissection, \
    SeparatorTreeNode, nested_dissection

__all__ = [
    "bisect", "Bisection", "minimum_degree_order",
    "nested_dissection", "NestedDissection", "SeparatorTreeNode",
    "DEFAULT_LEAF_SIZE", "mc64", "Mc64Result", "StructurallySingularError",
]
