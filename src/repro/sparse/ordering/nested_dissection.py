"""Nested-dissection ordering and its separator tree.

The METIS-substitute fill-reducing ordering (§III-A): recursively bisect
the adjacency graph with vertex separators; number each subtree's parts
first and its separator last, so every separator receives higher indices
than everything it separates.  The recursion tree *is* the assembly tree
of the multifrontal factorization: each node's separator becomes the
pivot block (F11) of one frontal matrix.

Subgraphs at or below ``leaf_size`` are ordered by minimum degree and
become leaf fronts containing all their vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..graph import symmetrize_pattern
from .bisection import bisect
from .mindeg import minimum_degree_order

__all__ = ["SeparatorTreeNode", "NestedDissection", "nested_dissection",
           "DEFAULT_LEAF_SIZE"]

DEFAULT_LEAF_SIZE = 32


@dataclass
class SeparatorTreeNode:
    """One assembly-tree node in the *permuted* numbering.

    The subtree owns the contiguous new-index range ``[lo, hi)``; the
    node's separator (pivot block) owns ``[hi - sep_size, hi)``.
    """

    lo: int
    hi: int
    sep_size: int
    children: list["SeparatorTreeNode"] = field(default_factory=list)

    @property
    def sep_begin(self) -> int:
        return self.hi - self.sep_size

    @property
    def sep_range(self) -> range:
        return range(self.sep_begin, self.hi)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        return 1 + max((c.depth() for c in self.children), default=0)

    def node_count(self) -> int:
        return 1 + sum(c.node_count() for c in self.children)

    def postorder(self) -> list["SeparatorTreeNode"]:
        out: list[SeparatorTreeNode] = []
        stack: list[tuple[SeparatorTreeNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                out.append(node)
            else:
                stack.append((node, True))
                for c in reversed(node.children):
                    stack.append((c, False))
        return out


@dataclass
class NestedDissection:
    """Ordering result: ``perm[new] = old`` plus the separator tree."""

    perm: np.ndarray
    iperm: np.ndarray
    tree: SeparatorTreeNode

    @property
    def n(self) -> int:
        return len(self.perm)


def nested_dissection(a: sp.spmatrix, *,
                      leaf_size: int = DEFAULT_LEAF_SIZE) -> NestedDissection:
    """Compute a nested-dissection ordering of (the pattern of) ``a``."""
    if leaf_size < 1:
        raise ValueError("leaf_size must be positive")
    g = symmetrize_pattern(a)
    n = g.shape[0]
    perm = np.empty(n, dtype=np.int64)
    if n == 0:
        return NestedDissection(perm=perm, iperm=perm.copy(),
                                tree=SeparatorTreeNode(0, 0, 0))

    def recurse(vertices: np.ndarray, lo: int) -> SeparatorTreeNode:
        nv = len(vertices)
        hi = lo + nv
        if nv <= leaf_size:
            order = minimum_degree_order(g, vertices)
            perm[lo:hi] = order
            return SeparatorTreeNode(lo=lo, hi=hi, sep_size=nv)

        cut = bisect(g, vertices)
        a_part, b_part, sep = cut.part_a, cut.part_b, cut.separator
        if len(sep) >= nv or (len(a_part) == 0 and len(b_part) == 0) \
                or len(a_part) == 0 or len(b_part) == 0:
            # Bisection failed to make progress: order as one leaf front.
            order = minimum_degree_order(g, vertices)
            perm[lo:hi] = order
            return SeparatorTreeNode(lo=lo, hi=hi, sep_size=nv)

        node = SeparatorTreeNode(lo=lo, hi=hi, sep_size=len(sep))
        node.children.append(recurse(a_part, lo))
        node.children.append(recurse(b_part, lo + len(a_part)))
        perm[hi - len(sep):hi] = sep
        return node

    tree = recurse(np.arange(n, dtype=np.int64), 0)
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n, dtype=np.int64)
    return NestedDissection(perm=perm, iperm=iperm, tree=tree)
