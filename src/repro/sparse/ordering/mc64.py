"""MC64-style maximum-product matching and scaling (§III-A).

Computes a column-to-row matching maximizing the product of the matched
``|a_ij|`` plus row/column scalings ``D_r, D_c`` such that the permuted,
scaled matrix has unit diagonal and all off-diagonal magnitudes ≤ 1 — the
static-pivoting preparation the paper's solver uses ("the MC64 matching
code", job 5 in MC64 terms).

Algorithm: the Duff–Koster formulation.  With
``c_ij = log(max_i |a_ij|) − log|a_ij| ≥ 0`` a maximum-product matching is
a minimum-cost perfect bipartite matching, solved by shortest augmenting
paths (Dijkstra with dual potentials, the Jonker–Volgenant / MC64
scheme) on the sparse pattern.  The optimal duals give the scalings:
``d_r(i) = exp(u_i)``, ``d_c(j) = exp(v_j) / max_i |a_ij|``; then every
entry of ``D_r A D_c`` has magnitude ≤ 1 with equality on the matching.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["mc64", "Mc64Result", "StructurallySingularError"]


class StructurallySingularError(ValueError):
    """Raised when no perfect matching exists (structurally singular A)."""


@dataclass
class Mc64Result:
    """Matching and scalings.

    ``row_of_col[j] = i`` means entry ``(i, j)`` is on the matching.  The
    row permutation placing the matching on the diagonal is
    ``perm[j] = row_of_col[j]`` (new row ``j`` = old row ``perm[j]``).
    """

    row_of_col: np.ndarray
    dr: np.ndarray
    dc: np.ndarray

    def apply(self, a: sp.spmatrix) -> sp.csr_matrix:
        """Return the row-permuted, scaled matrix ``(Q D_r A D_c)`` whose
        diagonal entries are ±1 and off-diagonal entries are ≤ 1."""
        a = sp.csr_matrix(a)
        scaled = sp.diags(self.dr) @ a @ sp.diags(self.dc)
        return sp.csr_matrix(scaled)[self.row_of_col, :].tocsr()


def mc64(a: sp.spmatrix) -> Mc64Result:
    """Maximum-product matching + scalings of a square sparse matrix."""
    a = sp.csc_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if n == 0:
        e = np.empty(0)
        return Mc64Result(np.empty(0, dtype=np.int64), e, e)

    indptr, indices = a.indptr, a.indices
    absval = np.abs(a.data)
    if np.any(indptr[1:] == indptr[:-1]):
        raise StructurallySingularError("matrix has an empty column")

    # Column-wise reduced costs c_ij = log(colmax_j) - log|a_ij| >= 0.
    cost = np.empty_like(absval)
    colmax = np.zeros(n)
    for j in range(n):
        s = slice(indptr[j], indptr[j + 1])
        mx = absval[s].max()
        if mx == 0.0:
            raise StructurallySingularError(f"column {j} is numerically zero")
        colmax[j] = mx
        with np.errstate(divide="ignore"):
            cost[s] = np.log(mx) - np.log(absval[s])
    # exact zeros in a column get +inf cost (cannot be matched)
    cost[~np.isfinite(cost)] = np.inf

    INF = np.inf
    u = np.zeros(n)          # row duals
    v = np.zeros(n)          # column duals
    row_of_col = np.full(n, -1, dtype=np.int64)
    col_of_row = np.full(n, -1, dtype=np.int64)

    # Cheap greedy initialization on tight (zero-cost) entries.
    for j in range(n):
        for t in range(indptr[j], indptr[j + 1]):
            i = indices[t]
            if cost[t] == 0.0 and col_of_row[i] == -1:
                row_of_col[j] = i
                col_of_row[i] = j
                break

    d = np.empty(n)                      # row distances
    pred = np.empty(n, dtype=np.int64)   # column from which a row is reached
    done = np.empty(n, dtype=bool)

    for j0 in range(n):
        if row_of_col[j0] != -1:
            continue
        d[:] = INF
        pred[:] = -1
        done[:] = False
        heap: list[tuple[float, int]] = []
        for t in range(indptr[j0], indptr[j0 + 1]):
            i = indices[t]
            rc = cost[t] - u[i] - v[j0]
            if rc < d[i]:
                d[i] = rc
                pred[i] = j0
                heapq.heappush(heap, (rc, i))

        sink = -1
        delta = INF
        while heap:
            dd, i = heapq.heappop(heap)
            if done[i] or dd > d[i]:
                continue
            done[i] = True
            if col_of_row[i] == -1:
                sink, delta = i, dd
                break
            j = col_of_row[i]  # matched edge is tight: move for free
            for t in range(indptr[j], indptr[j + 1]):
                i2 = indices[t]
                if done[i2]:
                    continue
                rc = dd + cost[t] - u[i2] - v[j]
                if rc < d[i2]:
                    d[i2] = rc
                    pred[i2] = j
                    heapq.heappush(heap, (rc, i2))

        if sink == -1:
            raise StructurallySingularError(
                "no perfect matching: matrix is structurally singular")

        # Dual update (keeps rc >= 0 everywhere, makes the augmenting path
        # tight): settled rows move by d[i]-delta, their matched columns
        # by delta-d[i], and the root column by delta.
        for i in range(n):
            if done[i]:
                jm = col_of_row[i]
                if jm != -1:
                    v[jm] += delta - d[i]
                u[i] += d[i] - delta
        v[j0] += delta

        # Augment along the predecessor chain.
        i = sink
        while True:
            j = int(pred[i])
            prev_row = row_of_col[j]
            row_of_col[j] = i
            col_of_row[i] = j
            if j == j0:
                break
            i = prev_row

    dr = np.exp(u)
    dc = np.exp(v) / colmax
    return Mc64Result(row_of_col=row_of_col, dr=dr, dc=dc)
