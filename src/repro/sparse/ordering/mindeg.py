"""Minimum-degree ordering for small subgraphs.

Nested dissection stops recursing below a leaf size; the remaining small
subgraphs are ordered with a (textbook, non-supernodal) minimum-degree
heuristic: repeatedly eliminate a vertex of minimum degree and connect its
neighbours into a clique.  Quadratic per elimination, which is fine at
leaf sizes (tens of vertices).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["minimum_degree_order"]


def minimum_degree_order(g: sp.csr_matrix,
                         vertices: np.ndarray) -> np.ndarray:
    """Order the induced subgraph on ``vertices`` by minimum degree.

    Returns the vertices in elimination order (original labels).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = len(vertices)
    if n <= 1:
        return vertices.copy()

    local = {int(v): i for i, v in enumerate(vertices)}
    adj: list[set[int]] = [set() for _ in range(n)]
    indptr, indices = g.indptr, g.indices
    for i, v in enumerate(vertices):
        for w in indices[indptr[v]:indptr[v + 1]]:
            j = local.get(int(w))
            if j is not None and j != i:
                adj[i].add(j)

    alive = np.ones(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    for step in range(n):
        best = -1
        best_deg = n + 1
        for i in range(n):
            if alive[i] and len(adj[i]) < best_deg:
                best, best_deg = i, len(adj[i])
        order[step] = vertices[best]
        alive[best] = False
        nbrs = adj[best]
        for u in nbrs:
            adj[u].discard(best)
        # clique among the neighbours (fill edges)
        nb = list(nbrs)
        for x in range(len(nb)):
            for y in range(x + 1, len(nb)):
                adj[nb[x]].add(nb[y])
                adj[nb[y]].add(nb[x])
        adj[best] = set()
    return order
