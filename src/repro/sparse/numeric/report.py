"""Per-front breakdown diagnostics for a multifrontal factorization.

:class:`FactorReport` aggregates the batched layer's per-matrix pivot
diagnostics — ``(info, n_replaced, min_pivot, growth)`` — over every
front of a factorization, grouped by assembly-tree level.  It is
attached to the factors (``MultifrontalFactors.report``), surfaced by
``SparseLU.factor()``, carried by every
:class:`~repro.errors.FactorizationError`, and consulted by the solve
layer to refuse broken factors and to escalate iterative refinement
when pivots were perturbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import FactorizationError
from ...recovery import RecoveryLog

__all__ = ["FactorReport", "check_factors_ok"]


def check_factors_ok(factors, action: str) -> None:
    """Refuse factors whose report records an unrecovered breakdown.

    Every solve-phase entry point (host sweep, device solve,
    :class:`SolvePlan`, :class:`DeviceFactorCache`) calls this so a
    broken-down factorization can never be substituted through —
    the failed fronts' columns would silently fill the solution with
    garbage.  Factors without a report (comparator baselines) pass.
    """
    report = getattr(factors, "report", None)
    if report is not None and not report.ok:
        raise FactorizationError(
            f"refusing to {action}: {report.summary()} — re-factor with "
            "static_pivot=True (or MC64 scaling) to recover", report)


@dataclass
class FactorReport:
    """Breakdown diagnostics of one multifrontal factorization.

    All arrays are indexed by front id (symbolic postorder):

    * ``info`` — LAPACK-style per-front status: 1-based pivot-block
      column of the first *unrecovered* pivot breakdown, 0 = clean.
      Negative values flag non-numerical damage: ``-2`` marks a front
      quarantined after persistent silent-data-corruption exhausted
      the ABFT re-execution budget (see
      :mod:`repro.sparse.numeric.gpu_factor`).
    * ``n_replaced`` — statically replaced (perturbed) pivots per front.
    * ``min_pivot`` — smallest ``|pivot|`` met in the front's pivot
      block (``+inf`` for an empty pivot block).
    * ``growth`` — element growth factor ``max|LU| / max|F11|``.
    * ``level`` — assembly-tree level of the front (0 = leaves).
    * ``sep_size`` — pivot-block (separator) size of the front.

    ``pivot_tol``/``static_pivot``/``replace_scale`` record the breakdown
    policy the factorization ran under.

    ``recovery`` — filled by the device factorization — is the
    :class:`~repro.recovery.RecoveryLog` slice of every resilience
    action (transfer retries, level retries/splits, chunk shrinks, host
    fallback) taken during this factorization; empty for a clean run,
    ``None`` for paths that never touched a device.
    """

    pivot_tol: float = 0.0
    static_pivot: bool = False
    replace_scale: float | None = None
    info: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    n_replaced: np.ndarray = field(
        default_factory=lambda: np.zeros(0, np.int64))
    min_pivot: np.ndarray = field(default_factory=lambda: np.zeros(0))
    growth: np.ndarray = field(default_factory=lambda: np.zeros(0))
    level: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    sep_size: np.ndarray = field(
        default_factory=lambda: np.zeros(0, np.int64))
    recovery: RecoveryLog | None = None

    @classmethod
    def from_factors(cls, factors, *, pivot_tol: float = 0.0,
                     static_pivot: bool = False,
                     replace_scale: float | None = None) -> "FactorReport":
        """Collect the per-front diagnostics stored on the factors."""
        symb = factors.symb
        nf = len(factors.fronts)
        level = np.array([inf.level for inf in symb.fronts],
                         dtype=np.int64)[:nf]
        return cls(
            pivot_tol=float(pivot_tol), static_pivot=bool(static_pivot),
            replace_scale=replace_scale,
            info=np.array([f.info for f in factors.fronts],
                          dtype=np.int64),
            n_replaced=np.array([f.n_replaced for f in factors.fronts],
                                dtype=np.int64),
            min_pivot=np.array([f.min_pivot for f in factors.fronts],
                               dtype=np.float64),
            growth=np.array([f.growth for f in factors.fronts],
                            dtype=np.float64),
            level=level,
            sep_size=np.array([inf.sep_size for inf in symb.fronts],
                              dtype=np.int64)[:nf],
        )

    # -- aggregate views ------------------------------------------------
    @property
    def n_fronts(self) -> int:
        return len(self.info)

    @property
    def ok(self) -> bool:
        """True when no front has an unrecovered pivot breakdown."""
        return not np.any(self.info != 0)

    @property
    def n_failed(self) -> int:
        return int(np.count_nonzero(self.info))

    @property
    def n_perturbed(self) -> int:
        """Number of fronts with at least one replaced pivot."""
        return int(np.count_nonzero(self.n_replaced))

    @property
    def total_replaced(self) -> int:
        return int(self.n_replaced.sum()) if len(self.n_replaced) else 0

    @property
    def max_growth(self) -> float:
        return float(self.growth.max()) if len(self.growth) else 1.0

    def failed_fronts(self) -> np.ndarray:
        """Front ids whose pivot block broke down un-recovered."""
        return np.nonzero(self.info != 0)[0]

    def corrupted_fronts(self) -> np.ndarray:
        """Front ids quarantined for unrepaired silent-data-corruption
        (``info < 0``) — a subset of :meth:`failed_fronts`."""
        return np.nonzero(self.info < 0)[0]

    def perturbed_fronts(self) -> np.ndarray:
        """Front ids with at least one statically replaced pivot."""
        return np.nonzero(self.n_replaced != 0)[0]

    def summary(self) -> str:
        """One-line human-readable digest (used as exception text)."""
        if self.ok:
            head = f"factorization clean over {self.n_fronts} fronts"
        else:
            parts = []
            corrupt = self.corrupted_fronts()
            pivot_bad = np.nonzero(self.info > 0)[0]
            if len(pivot_bad):
                shown = ", ".join(str(int(f)) for f in pivot_bad[:8])
                if len(pivot_bad) > 8:
                    shown += ", ..."
                parts.append(f"pivot breakdown (zero pivot or |pivot| "
                             f"below threshold) in "
                             f"{len(pivot_bad)}/{self.n_fronts} fronts "
                             f"[{shown}]")
            if len(corrupt):
                shown = ", ".join(str(int(f)) for f in corrupt[:8])
                if len(corrupt) > 8:
                    shown += ", ..."
                parts.append(f"persistent corruption quarantined "
                             f"{len(corrupt)}/{self.n_fronts} fronts "
                             f"[{shown}]")
            head = "; ".join(parts)
        tail = (f"{self.total_replaced} pivot(s) statically replaced in "
                f"{self.n_perturbed} front(s)"
                if self.total_replaced else "no pivots replaced")
        finite = self.min_pivot[np.isfinite(self.min_pivot)] \
            if len(self.min_pivot) else np.zeros(0)
        minp = f"{finite.min():.3e}" if len(finite) else "n/a"
        return (f"{head}; {tail}; min |pivot| = {minp}, "
                f"max growth = {self.max_growth:.3e} "
                f"(pivot_tol={self.pivot_tol:g}, "
                f"static_pivot={self.static_pivot})")
