"""Compiled multifrontal level schedules: factor once, replay on
same-structure matrices.

The multifrontal traversal's launch sequence is a pure function of the
symbolic factorization: front shapes, level grouping, DCWI plans and the
assembly index arithmetic never depend on the matrix *values*.  For
applications that re-factor a sequence of matrices sharing one sparsity
structure (time stepping, Newton iterations, parameter sweeps — the
serve layer's bread and butter), :func:`compile_factor_program` records
the first ``strategy="batched"`` factorization into a
:class:`FactorProgram`: persistent front buffers, the uploaded-CSR
device claim and a fixed step schedule (zero-fill → assembly →
pivot-state reset → LU launches → growth/diagnostics → guard →
off-diagonal updates, per level).  ``program.run(a_perm)`` then only
overwrites the CSR payload bytes and replays — zero plan-cache misses,
zero new device allocations, bitwise-identical factors, pivots,
diagnostics and :class:`KernelCost` records (modulo launch fusion).

Value-dependent control flow is fenced, not recorded: a pivot breakdown
changes the level's launch sequence (quarantine + survivor sub-batches),
so compilation is abandoned if the rehearsal matrix breaks down, and a
replay whose payload breaks down raises
:class:`~repro.batched.program.GuardTripped` — the caller
(:meth:`SparseLU.factor`) falls back to the ordinary bucketed path for
that payload.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ...batched.engine import BatchEngine, resolve_engine
from ...batched.getrf import irr_getrf
from ...batched.panel import _batch_abs_max
from ...batched.program import CompileError, GuardTripped, PayloadMismatch, \
    _GuardStep, _HostStep, _Recorder, _maybe_fuse, _reset_pivots
from ...device.simulator import Device
from ...errors import FactorizationError
from ..symbolic.analysis import SymbolicFactorization
from .factors import FrontFactors, MultifrontalFactors
from .gpu_factor import GpuFactorResult, _assemble_level, _chunk_levels, \
    _level_offdiag, _make_block_batches, _record_level_diag
from .report import FactorReport

__all__ = ["FactorProgram", "compile_factor_program"]


class FactorProgram:
    """A compiled level schedule over one sparse structure.

    Built by :func:`compile_factor_program`.  Holds the uploaded-CSR
    claim and every front buffer for its lifetime; :meth:`run` replays
    the recorded schedule on a same-structure matrix.
    """

    def __init__(self, device: Device, symb: SymbolicFactorization,
                 a_csr: sp.csr_matrix, a_dev_bytes: int, buffers: dict,
                 steps: list, level_diags: list, policy: tuple,
                 engine: BatchEngine):
        self.device = device
        self.symb = symb
        self.a_csr = a_csr                  # .data overwritten per replay
        self.a_dev_bytes = a_dev_bytes
        self.policy = policy
        self.engine = engine
        self.runs = 0
        self._buffers = buffers             # fid -> DeviceArray, persistent
        self._steps = steps
        self._level_diags = level_diags     # (fids, piv) per level
        self._indptr = a_csr.indptr.copy()
        self._indices = a_csr.indices.copy()
        self._freed = False

    # -- signature matching -------------------------------------------
    def matches(self, a_perm: sp.spmatrix, policy: tuple) -> bool:
        """True when ``a_perm`` shares the compiled structure and the
        factorization policy is identical."""
        if policy != self.policy or not sp.issparse(a_perm):
            return False
        a = a_perm if isinstance(a_perm, sp.csr_matrix) \
            else sp.csr_matrix(a_perm)
        return (a.shape == self.a_csr.shape
                and a.dtype == self.a_csr.dtype
                and np.array_equal(a.indptr, self._indptr)
                and np.array_equal(a.indices, self._indices))

    # -- execution -----------------------------------------------------
    def run(self, a_perm: sp.spmatrix, *, pivot_tol: float = 0.0,
            static_pivot: bool = False, replace_scale: float | None = None,
            breakdown: str = "raise") -> GpuFactorResult:
        """Replay the schedule on a same-structure matrix.

        The breakdown-policy keywords must match the compiled policy
        (they are baked into the recorded pivot state); they are
        re-accepted here only so the caller's report carries them.
        Raises :class:`PayloadMismatch` on a structure/dtype deviation
        and :class:`GuardTripped` when a front breaks down (the
        schedule recorded the breakdown-free launch sequence).
        """
        if self._freed:
            raise RuntimeError("cannot run a freed FactorProgram")
        a = a_perm if isinstance(a_perm, sp.csr_matrix) \
            else sp.csr_matrix(a_perm)
        if a.shape != self.a_csr.shape or a.dtype != self.a_csr.dtype \
                or not np.array_equal(a.indptr, self._indptr) \
                or not np.array_equal(a.indices, self._indices):
            raise PayloadMismatch(
                "matrix does not share the compiled sparse structure "
                "(shape/dtype/indptr/indices)")
        device = self.device
        mark = device.recovery_log.mark()
        # payload upload: the CSR arrays already live on the device (the
        # claim persists); only the value bytes move.
        self.a_csr.data[...] = a.data
        device._account_transfer(self.a_dev_bytes)
        try:
            with device.timed_region() as region:
                for step in self._steps:
                    step.run(device)
        except GuardTripped:
            device.synchronize()   # drain recorded launches already issued
            raise
        self.runs += 1

        diag_of: dict[int, tuple] = {}
        pivots_of: dict[int, np.ndarray] = {}
        for fids, piv in self._level_diags:
            _record_level_diag(diag_of, fids, piv)
            for fid, ip in zip(fids, piv.ipiv):
                pivots_of[fid] = ip
        return _package_result(
            device, self.symb, self._buffers, pivots_of, diag_of, region,
            mark, pivot_tol=pivot_tol, static_pivot=static_pivot,
            replace_scale=replace_scale, breakdown=breakdown,
            counters_extra={"compiled_replay": 1})

    def free(self) -> None:
        """Release the front buffers and the CSR claim (idempotent)."""
        if self._freed:
            return
        self._freed = True
        for arr in self._buffers.values():
            arr.free()
        self.device._release(self.a_dev_bytes)


def _package_result(device, symb, buffers, pivots_of, diag_of, region,
                    mark, *, pivot_tol, static_pivot, replace_scale,
                    breakdown, counters_extra=None) -> GpuFactorResult:
    """The download-and-report tail of ``multifrontal_factor_gpu``."""
    host_factors = {}
    for fid in range(len(symb.fronts)):
        info = symb.fronts[fid]
        s = info.sep_size
        data = buffers[fid].to_host()
        d_info, d_rep, d_minp, d_growth = diag_of.get(
            fid, (0, 0, np.inf, 1.0))
        host_factors[fid] = FrontFactors(
            f11=data[:s, :s].copy(), ipiv=pivots_of[fid].copy(),
            f12=data[:s, s:].copy(), f21=data[s:, :s].copy(),
            info=d_info, n_replaced=d_rep, min_pivot=d_minp,
            growth=d_growth)

    out = MultifrontalFactors(symb=symb)
    out.fronts = [host_factors[fid] for fid in range(len(symb.fronts))]
    out.report = FactorReport.from_factors(
        out, pivot_tol=pivot_tol, static_pivot=static_pivot,
        replace_scale=replace_scale)
    out.report.recovery = device.recovery_log.since(mark)
    if breakdown == "raise" and not out.report.ok:
        raise FactorizationError(out.report.summary(), out.report)
    counters = {k: region[k] for k in region if k != "elapsed"}
    counters["traversals"] = 1
    counters.update(counters_extra or {})
    return GpuFactorResult(factors=out, elapsed=region["elapsed"],
                           counters=counters,
                           breakdown=device.profiler.by_prefix(),
                           report=out.report)


def compile_factor_program(device: Device, a_perm: sp.spmatrix,
                           symb: SymbolicFactorization, *,
                           gemm_mode: str = "hybrid",
                           hybrid_cutoff: int = 256,
                           laswp_variant: str = "rehearsed",
                           nb: int = 32,
                           pivot_tol: float = 0.0,
                           static_pivot: bool = False,
                           replace_scale: float | None = None,
                           breakdown: str = "raise",
                           engine=None, fuse: bool = True,
                           fuse_window: int = 8
                           ) -> tuple["FactorProgram | None",
                                      GpuFactorResult]:
    """Factor ``a_perm`` once while recording the level schedule.

    Returns ``(program, result)``: the result of this (first)
    factorization — identical to ``multifrontal_factor_gpu`` with the
    bucketed engine — plus the compiled program for same-structure
    replays.  ``program`` is ``None`` when any front broke down during
    the rehearsal (the recorded schedule would not be breakdown-free) —
    the result is still valid.  The in-core single-traversal regime only
    (use ``multifrontal_factor_gpu`` for out-of-core budgets).
    """
    if gemm_mode not in ("irr", "vendor", "hybrid"):
        raise CompileError(f"unknown gemm_mode {gemm_mode!r}")
    if breakdown not in ("raise", "report"):
        raise CompileError(f"unknown breakdown mode {breakdown!r}")
    eng = resolve_engine(engine) if engine is not None \
        else BatchEngine("compiled")
    if eng is None:
        raise CompileError(
            "cannot compile the naive per-matrix path; pass a bucketed "
            "or compiled engine")
    a_csr = sp.csr_matrix(a_perm).copy()
    if a_csr.shape[0] != symb.n:
        raise CompileError("matrix size does not match the symbolic "
                           "analysis")
    a_dev_bytes = a_csr.data.nbytes + a_csr.indices.nbytes + \
        a_csr.indptr.nbytes
    policy = (gemm_mode, int(hybrid_cutoff), laswp_variant, int(nb),
              float(pivot_tol), bool(static_pivot),
              None if replace_scale is None else float(replace_scale))
    dtype = a_csr.dtype
    tiny = float(np.finfo(dtype).tiny)
    mark = device.recovery_log.mark()

    device._claim(a_dev_bytes, site="gpu_factor:a_csr")
    buffers: dict = {}
    steps: list = []
    level_diags: list = []
    ok = True
    rec = _Recorder(device)
    try:
        device._account_transfer(a_dev_bytes)
        with device.timed_region() as region:
            all_fids = list(range(len(symb.fronts)))
            for fids in _chunk_levels(symb, all_fids):
                for fid in fids:
                    info = symb.fronts[fid]
                    buffers[fid] = device.zeros((info.order, info.order),
                                                dtype=dtype)

                def zero_fill(fids=tuple(fids)) -> None:
                    for fid in fids:
                        buffers[fid].data[...] = 0.0

                with rec:
                    _assemble_level(device, a_csr, symb, fids, buffers)
                assemble_steps = rec.take()

                s_vec, u_vec, f11, f12, f21, f22 = _make_block_batches(
                    device, symb, fids, buffers)
                with rec:
                    piv = irr_getrf(device, f11, nb=nb,
                                    laswp_variant=laswp_variant,
                                    pivot_tol=pivot_tol,
                                    static_pivot=static_pivot,
                                    replace_scale=replace_scale,
                                    engine=eng)
                getrf_steps = rec.take()
                level_diags.append((list(fids), piv))
                if np.any(piv.info != 0):
                    ok = False     # breakdown-free schedule impossible

                def reset(piv=piv, f11=f11) -> None:
                    _reset_pivots(piv, _batch_abs_max(f11), tiny)

                def growth(piv=piv, f11=f11) -> None:
                    ctrl = piv.ctrl
                    post = _batch_abs_max(f11)
                    np.divide(post, ctrl.anorm, out=ctrl.growth,
                              where=ctrl.anorm > 0.0)

                def guard(piv=piv, fids=tuple(fids)) -> None:
                    if np.any(piv.info != 0):
                        bad = np.nonzero(piv.info != 0)[0]
                        raise GuardTripped(
                            f"pivot breakdown during compiled replay "
                            f"(fronts "
                            f"{[fids[int(i)] for i in bad]}); the "
                            f"recorded level schedule assumes clean "
                            f"factors — fall back to the bucketed path",
                            info=piv.info.copy())

                with rec:
                    _level_offdiag(device, symb, fids, s_vec, u_vec,
                                   f11, f12, f21, f22, piv, gemm_mode,
                                   hybrid_cutoff, engine=eng)
                offdiag_steps = rec.take()

                if ok:
                    steps.append(_HostStep(zero_fill))
                    steps.extend(assemble_steps)
                    steps.append(_HostStep(reset))
                    steps.extend(getrf_steps)
                    # growth/diag before the guard so a tripped replay
                    # still leaves coherent diagnostics behind
                    steps.append(_HostStep(growth))
                    steps.append(_GuardStep(guard))
                    steps.extend(offdiag_steps)
    except Exception:
        for arr in buffers.values():
            arr.free()
        device._release(a_dev_bytes)
        raise

    diag_of: dict[int, tuple] = {}
    pivots_of: dict[int, np.ndarray] = {}
    for fids, piv in level_diags:
        _record_level_diag(diag_of, fids, piv)
        for fid, ip in zip(fids, piv.ipiv):
            pivots_of[fid] = ip

    program = None
    if ok:
        program = FactorProgram(
            device, symb, a_csr, a_dev_bytes, buffers,
            _maybe_fuse(steps, fuse, fuse_window), level_diags, policy,
            eng)
    try:
        result = _package_result(
            device, symb, buffers, pivots_of, diag_of, region, mark,
            pivot_tol=pivot_tol, static_pivot=static_pivot,
            replace_scale=replace_scale, breakdown=breakdown,
            counters_extra={"compiled": 1})
    finally:
        if not ok:
            # rehearsal broke down: no replayable schedule, release the
            # would-be persistent state (after the downloads above)
            for arr in buffers.values():
                arr.free()
            device._release(a_dev_bytes)
    return program, result
