"""GPU multifrontal factorization: level-by-level batched fronts (§III-A).

"Our GPU implementation traverses the tree level-by-level, from leaves to
root, using batch algorithms for the dense linear algebra operations (LU,
triangular solve and matrix multiplication) for all fronts on a given
level."

Three kernel strategies, matching the paper's comparisons:

* ``"batched"`` — the paper's contribution: per level, one assembly
  kernel, then irrLU on the pivot blocks, one pivot-application kernel,
  two irrTRSMs and the Schur irrGEMM.  ``gemm_mode`` selects pure
  irrGEMM, a pure vendor-GEMM loop, or the paper's hybrid (irrGEMM for
  fronts ≤ 256, cuBLAS-style loop above — Fig 14).
* ``"looped"`` — the naive comparator: cuSOLVER/cuBLAS called in a loop
  over the fronts of each level.
* ``"strumpack"`` — the STRUMPACK v6.3.1 model: a naive batched kernel
  restricted to pivot blocks ≤ 32×32 (unblocked column-wise, a launch per
  elementary operation), a looped vendor path above, and a stream
  synchronization after every operation — the launch/sync profile
  Table I quotes.

Per-front pointer views (the F11/F12/F21/F22 blocks) are set up *once per
level* on the host, which is exactly what the expanded interface makes
cheap; no pointer-arithmetic kernels run on the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ...batched.engine import resolve_engine
from ...batched.gemm import irr_gemm
from ...batched.getrf import irr_getrf
from ...batched.interface import IrrBatch
from ...batched.trsm import irr_trsm
from ...batched.vendor import vendor_gemm, vendor_getrf, vendor_trsm
from ...device.kernel import KernelCost
from ...device.memory import DeviceArray, DeviceOutOfMemory, \
    validate_memory_budget
from ...device.simulator import Device
from ...errors import CorruptionDetected, FactorizationError, \
    KernelLaunchError, ResourceExhausted
from ..symbolic.analysis import SymbolicFactorization
from .factors import FrontFactors, MultifrontalFactors
from .report import FactorReport

__all__ = ["multifrontal_factor_gpu", "GpuFactorResult", "plan_traversals",
           "HYBRID_GEMM_CUTOFF", "STRUMPACK_BATCH_LIMIT"]

HYBRID_GEMM_CUTOFF = 256   # Fig 14: irrGEMM below, vendor loop above
STRUMPACK_BATCH_LIMIT = 32

#: Bounded retries of one level transaction after a kernel-launch
#: failure before the failure is treated as persistent.
_MAX_LEVEL_RETRIES = 3
#: Bounded halvings of the out-of-core traversal budget after a dynamic
#: device OOM before the device path is declared exhausted.
_MAX_CHUNK_SHRINKS = 4


@dataclass
class GpuFactorResult:
    """Factors plus the simulated performance of the factorization.

    ``report`` is the per-front pivot-breakdown
    :class:`~repro.sparse.numeric.report.FactorReport` (also attached to
    ``factors.report``); ``breakdown`` is the *performance* breakdown by
    kernel prefix, unrelated to pivot breakdown.
    """

    factors: MultifrontalFactors
    elapsed: float
    counters: dict = field(default_factory=dict)
    breakdown: dict = field(default_factory=dict)
    report: "FactorReport | None" = None


def multifrontal_factor_gpu(device: Device, a_perm: sp.spmatrix,
                            symb: SymbolicFactorization, *,
                            strategy: str = "batched",
                            gemm_mode: str = "hybrid",
                            hybrid_cutoff: int = HYBRID_GEMM_CUTOFF,
                            laswp_variant: str = "rehearsed",
                            nb: int = 32,
                            memory_budget: int | None = None,
                            pivot_tol: float = 0.0,
                            static_pivot: bool = False,
                            replace_scale: float | None = None,
                            breakdown: str = "raise",
                            engine="bucketed",
                            host_fallback: bool = True) -> GpuFactorResult:
    """Factor the permuted sparse matrix on the simulated device.

    ``engine`` selects the host execution path for the batched kernels
    (``"bucketed"`` default / ``"naive"``, see
    :mod:`repro.batched.engine`).  One :class:`BatchEngine` is shared by
    every level of the traversal, so levels with matching front-size
    vectors reuse each other's DCWI plans.  Same-level fronts are highly
    shape-clustered, which is exactly the case shape bucketing rewards.
    The strategies that *model* naive implementations (``"looped"``,
    ``"strumpack"``) always run their reference loops.

    ``memory_budget`` (bytes) enables the paper's §III-A out-of-core
    mode: "if the entire assembly tree does not fit in the device memory,
    then the factorization is split in multiple traversals of subtrees
    that do fit on the device".  Fronts are processed in postorder chunks
    whose working set fits the budget; finished chunks stream their
    factors (and the Schur complements crossing the chunk boundary) back
    to the host, and those Schur blocks are re-uploaded when their parent
    front is assembled.  Raises :class:`DeviceOutOfMemory` if a single
    front cannot fit (a *static* infeasibility — checked eagerly, never
    entering the recovery ladder below).

    Resource recovery: a *dynamic* failure during the traversal — a
    transient allocation failure, a rejected kernel launch, or an OOM
    from the traversal's working set — is retried through a bounded
    ladder: the failing level transaction re-runs from consistent
    inputs, its front batch is split into sub-batches, the traversal
    budget is shrunk (down to the largest-front floor) and the
    factorization restarted, and finally — with ``host_fallback=True``
    (default) — the host path takes over.  Every action is recorded in
    the device's recovery log; the slice belonging to this call is
    attached as ``report.recovery``.  Recovered runs produce factors
    bitwise identical to a fault-free run (host fallback preserves the
    math but not the batched kernels' operation order).  With
    ``host_fallback=False`` an exhausted ladder raises a typed
    :class:`~repro.errors.ResourceExhausted` carrying that log.

    ``pivot_tol``/``static_pivot``/``replace_scale`` set the pivot
    breakdown policy of the batched LU (see
    :func:`~repro.batched.getrf.irr_getrf`); every front's
    ``(info, n_replaced, min_pivot, growth)`` diagnostics are aggregated
    into the result's :class:`FactorReport`.  A front whose pivot block
    broke down un-recovered is *quarantined* — its F12/F21 factors and
    Schur complement are zeroed so the extend-add never consumes
    Inf/NaN — and with ``breakdown="raise"`` (default) a typed
    :class:`~repro.errors.FactorizationError` carrying the report is
    raised once the traversal completes; ``breakdown="report"`` returns
    the quarantined factors with ``report.ok == False``.
    """
    if strategy not in ("batched", "looped", "strumpack"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if gemm_mode not in ("irr", "vendor", "hybrid"):
        raise ValueError(f"unknown gemm_mode {gemm_mode!r}")
    if breakdown not in ("raise", "report"):
        raise ValueError(f"unknown breakdown mode {breakdown!r}")
    memory_budget = validate_memory_budget(memory_budget)
    a_perm = sp.csr_matrix(a_perm)
    if a_perm.shape[0] != symb.n:
        raise ValueError("matrix size does not match the symbolic analysis")

    a_dev_bytes = a_perm.data.nbytes + a_perm.indices.nbytes + \
        a_perm.indptr.nbytes
    engine = resolve_engine(engine)
    mark = device.recovery_log.mark()

    # Static infeasibility ("largest front needs X bytes") is a contract
    # violation of the requested budget: it raises eagerly, before any
    # recovery is attempted.  The ladder below only shrinks the budget
    # down to the largest-front floor, so the static raise cannot recur.
    itemsize = a_perm.dtype.itemsize
    plan_traversals(symb, memory_budget, itemsize=itemsize)
    floor = max((itemsize * f.order ** 2 for f in symb.fronts), default=0)

    budget = memory_budget
    host_factors = region = failure = None
    n_chunks = 0
    for _round in range(_MAX_CHUNK_SHRINKS + 1):
        try:
            host_factors, region, n_chunks = _attempt_factorization(
                device, a_perm, symb, budget, a_dev_bytes, strategy,
                gemm_mode, hybrid_cutoff, laswp_variant, nb, engine,
                pivot_tol, static_pivot, replace_scale)
            break
        except KernelLaunchError as exc:
            failure = exc       # already retried per level: persistent,
            break               # and a smaller budget cannot fix it
        except DeviceOutOfMemory as exc:
            failure = exc
            if _round >= _MAX_CHUNK_SHRINKS:
                break           # no retry follows: don't log a shrink
            prev = budget if budget is not None \
                else int(device.spec.memory_capacity)
            smaller = max(floor, prev // 2)
            if floor <= 0 or smaller >= prev:
                break           # already at the largest-front floor
            device.recovery_log.record(
                "chunk-shrink", site="gpu_factor",
                detail=f"traversal budget {prev} -> {smaller} bytes")
            if engine is not None:
                engine.clear_plan_caches()
            budget = smaller

    if host_factors is None:
        recovery = device.recovery_log.since(mark)
        if host_fallback:
            device.recovery_log.record(
                "host-fallback", site="gpu_factor",
                detail=f"{type(failure).__name__}: {failure}")
            return _host_fallback_result(
                device, a_perm, symb, mark, pivot_tol=pivot_tol,
                static_pivot=static_pivot, replace_scale=replace_scale,
                breakdown=breakdown)
        raise ResourceExhausted(
            f"device factorization failed after exhausting its recovery "
            f"options ({recovery.summary()})", log=recovery) from failure

    out = MultifrontalFactors(symb=symb)
    out.fronts = [host_factors[fid] for fid in range(len(symb.fronts))]

    out.report = FactorReport.from_factors(
        out, pivot_tol=pivot_tol, static_pivot=static_pivot,
        replace_scale=replace_scale)
    out.report.recovery = device.recovery_log.since(mark)
    if breakdown == "raise" and not out.report.ok:
        raise FactorizationError(out.report.summary(), out.report)

    counters = {k: region[k] for k in region if k != "elapsed"}
    counters["traversals"] = n_chunks
    return GpuFactorResult(factors=out, elapsed=region["elapsed"],
                           counters=counters,
                           breakdown=device.profiler.by_prefix(),
                           report=out.report)


def _attempt_factorization(device, a_perm, symb, memory_budget,
                           a_dev_bytes, strategy, gemm_mode, hybrid_cutoff,
                           laswp_variant, nb, engine, pivot_tol,
                           static_pivot, replace_scale) -> tuple:
    """One full traversal under a given budget; exception-safe accounting.

    Any failure releases every device allocation this attempt made (the
    uploaded A, live front buffers) before propagating, so a failed
    attempt leaves ``device.allocated_bytes`` exactly where it started.
    """
    chunks = plan_traversals(symb, memory_budget,
                             itemsize=a_perm.dtype.itemsize)
    streaming = len(chunks) > 1

    buffers: dict[int, DeviceArray] = {}
    pivots_of: dict[int, np.ndarray] = {}
    diag_of: dict[int, tuple[int, int, float, float]] = {}
    host_schur: dict[int, np.ndarray] = {}
    host_factors: dict[int, FrontFactors] = {}

    def flush_chunk(chunk: list[int]) -> None:
        """Stream a finished traversal's results back to the host."""
        chunk_set = set(chunk)
        for fid in chunk:
            info = symb.fronts[fid]
            s = info.sep_size
            data = buffers[fid].to_host()
            d_info, d_rep, d_minp, d_growth = diag_of.get(
                fid, (0, 0, np.inf, 1.0))
            host_factors[fid] = FrontFactors(
                f11=data[:s, :s].copy(), ipiv=pivots_of[fid],
                f12=data[:s, s:].copy(), f21=data[s:, :s].copy(),
                info=d_info, n_replaced=d_rep, min_pivot=d_minp,
                growth=d_growth)
            if info.parent >= 0 and info.parent not in chunk_set \
                    and info.upd_size:
                host_schur[fid] = data[s:, s:].copy()
            buffers[fid].free()
            del buffers[fid]

    # Upload the sparse matrix (outside the timed factorization region,
    # as a solver would hold A on the device already).
    device._claim(a_dev_bytes, site="gpu_factor:a_csr")
    try:
        device._account_transfer(a_dev_bytes)
        with device.timed_region() as region:
            for chunk in chunks:
                for level_fids in _chunk_levels(symb, chunk):
                    _run_level(device, a_perm, symb, level_fids, buffers,
                               pivots_of, strategy, gemm_mode,
                               hybrid_cutoff, laswp_variant, nb,
                               host_schur=host_schur, engine=engine,
                               diag_of=diag_of, pivot_tol=pivot_tol,
                               static_pivot=static_pivot,
                               replace_scale=replace_scale)
                if streaming:
                    flush_chunk(chunk)
        if not streaming:
            # Factors stayed resident (as a solver keeping them for the
            # solve phase would); download outside the measured region.
            flush_chunk(chunks[0])
        return host_factors, region, len(chunks)
    finally:
        for arr in buffers.values():
            arr.free()
        device._release(a_dev_bytes)


def _host_fallback_result(device, a_perm, symb, mark, *, pivot_tol,
                          static_pivot, replace_scale,
                          breakdown) -> GpuFactorResult:
    """Terminal rung of the recovery ladder: factor on the host.

    The result carries the same report/recovery surface as a device run
    so callers see one shape either way; simulated device timings are
    zero (no device work succeeded).
    """
    from .cpu_factor import multifrontal_factor_cpu
    try:
        factors = multifrontal_factor_cpu(
            a_perm, symb, pivot_tol=pivot_tol, static_pivot=static_pivot,
            replace_scale=replace_scale, breakdown=breakdown)
    except FactorizationError as exc:
        if exc.report is not None:
            exc.report.recovery = device.recovery_log.since(mark)
        raise
    factors.report.recovery = device.recovery_log.since(mark)
    return GpuFactorResult(factors=factors, elapsed=0.0,
                           counters={"traversals": 0, "host_fallback": 1},
                           breakdown={}, report=factors.report)


def plan_traversals(symb: SymbolicFactorization,
                    memory_budget: int | None, *,
                    itemsize: int = 8) -> list[list[int]]:
    """Split the postorder front sequence into device-sized traversals.

    Greedy: accumulate fronts (postorder, so children precede parents)
    while the chunk working set — its front buffers plus the
    cross-traversal child Schur blocks it must re-upload — fits the
    budget.  With ``memory_budget=None`` everything is one traversal.
    ``itemsize`` is the working precision's bytes per element (8 for
    FP64; FP32 factorizations fit twice the fronts per traversal).
    """
    n = len(symb.fronts)
    if memory_budget is None or n == 0:
        return [list(range(n))]

    front_bytes = [itemsize * f.order ** 2 for f in symb.fronts]
    biggest = max(front_bytes)
    if biggest > memory_budget:
        from ...device.memory import DeviceOutOfMemory
        raise DeviceOutOfMemory(
            f"largest front needs {biggest} bytes but the traversal "
            f"budget is {memory_budget} bytes")

    chunks: list[list[int]] = []
    current: list[int] = []
    current_set: set[int] = set()
    current_bytes = 0
    for fid in range(n):
        need = front_bytes[fid]
        # children factored in an earlier traversal: their Schur blocks
        # come back through the budget during assembly
        for c in symb.fronts[fid].children:
            if c not in current_set:
                need += itemsize * symb.fronts[c].upd_size ** 2
        if current and current_bytes + need > memory_budget:
            chunks.append(current)
            current, current_set, current_bytes = [], set(), 0
            need = front_bytes[fid] + sum(
                itemsize * symb.fronts[c].upd_size ** 2
                for c in symb.fronts[fid].children)
        current.append(fid)
        current_set.add(fid)
        current_bytes += need
    if current:
        chunks.append(current)
    return chunks


def _chunk_levels(symb: SymbolicFactorization,
                  chunk: list[int]) -> list[list[int]]:
    """Group a traversal's fronts by tree level (deepest first)."""
    by_level: dict[int, list[int]] = {}
    for fid in chunk:
        by_level.setdefault(symb.fronts[fid].level, []).append(fid)
    return [by_level[lev] for lev in sorted(by_level, reverse=True)]


# ----------------------------------------------------------------------
# level processing
# ----------------------------------------------------------------------

def _run_level(device, a_perm, symb, fids, buffers, pivots_of, strategy,
               gemm_mode, hybrid_cutoff, laswp_variant, nb, *,
               host_schur=None, engine=None, diag_of=None, pivot_tol=0.0,
               static_pivot=False, replace_scale=None) -> None:
    """Run one level as a transaction: bounded retries, then batch split.

    Level inputs are immutable while the level runs — children buffers
    are only read by the extend-add, and a consumed host Schur block is
    deleted only after the level commits — so a retry re-runs the level
    from identical state and produces bitwise-identical factors.  A
    failed attempt rolls back everything the level allocated or wrote.

    On a transient allocation failure the level is retried once (the
    fault layer's per-operation counters mean a transient rule passes on
    the retry); a second OOM splits the front batch into halves, which
    halves the engine's transient packing footprint (per-front numerics
    are batch-composition independent, the engines' bitwise contract).
    Kernel-launch failures are retried up to :data:`_MAX_LEVEL_RETRIES`
    times, then treated as persistent.

    Silent-data-corruption escalation: a :class:`CorruptionDetected`
    reaching this level means the ABFT layer's own bounded re-execution
    already failed (the corruption is persistent at kernel scope).  The
    level re-runs once from its immutable inputs (a different launch
    composition after the sub-batching below can dodge positional
    rules), then the front batch is split in halves to *isolate* the
    corrupted front — per-front numerics are batch-composition
    independent, so the clean half commits bitwise-identical factors —
    and a single front that stays corrupted is **quarantined**: zeroed
    factors, identity pivots and the ``info = -2`` corruption sentinel,
    so the damage surfaces in the :class:`FactorReport` as a typed
    per-front failure rather than silently wrong numbers.
    """
    kw = dict(host_schur=host_schur, engine=engine, diag_of=diag_of,
              pivot_tol=pivot_tol, static_pivot=static_pivot,
              replace_scale=replace_scale)
    launch_failures = alloc_failures = corrupt_failures = 0
    while True:
        try:
            consumed = _factor_level(device, a_perm, symb, fids, buffers,
                                     pivots_of, strategy, gemm_mode,
                                     hybrid_cutoff, laswp_variant, nb, **kw)
        except CorruptionDetected as exc:
            _rollback_level(fids, buffers, pivots_of, diag_of)
            corrupt_failures += 1
            if corrupt_failures < 2:
                device.recovery_log.record(
                    "kernel-reexec", site=f"level[{len(fids)} fronts]",
                    attempt=corrupt_failures, detail=str(exc))
                continue
            if len(fids) > 1:
                half = (len(fids) + 1) // 2
                device.recovery_log.record(
                    "level-split", site=f"level[{len(fids)} fronts]",
                    detail=f"corruption isolation: sub-batches of "
                           f"{half} and {len(fids) - half}")
                _run_level(device, a_perm, symb, fids[:half], buffers,
                           pivots_of, strategy, gemm_mode, hybrid_cutoff,
                           laswp_variant, nb, **kw)
                _run_level(device, a_perm, symb, fids[half:], buffers,
                           pivots_of, strategy, gemm_mode, hybrid_cutoff,
                           laswp_variant, nb, **kw)
                return
            _quarantine_corrupt_front(device, a_perm, symb, fids[0],
                                      buffers, pivots_of, diag_of, exc)
            return
        except (DeviceOutOfMemory, KernelLaunchError) as exc:
            _rollback_level(fids, buffers, pivots_of, diag_of)
            if isinstance(exc, KernelLaunchError):
                launch_failures += 1
                if launch_failures >= _MAX_LEVEL_RETRIES:
                    raise
                device.recovery_log.record(
                    "launch-retry", site=exc.kernel,
                    attempt=launch_failures, detail=str(exc))
                continue
            alloc_failures += 1
            if alloc_failures < 2:
                device.recovery_log.record(
                    "alloc-retry", site=f"level[{len(fids)} fronts]",
                    attempt=alloc_failures, detail=str(exc))
                continue
            if len(fids) <= 1:
                raise               # cannot split a single front
            half = (len(fids) + 1) // 2
            device.recovery_log.record(
                "level-split", site=f"level[{len(fids)} fronts]",
                detail=f"sub-batches of {half} and {len(fids) - half}")
            _run_level(device, a_perm, symb, fids[:half], buffers,
                       pivots_of, strategy, gemm_mode, hybrid_cutoff,
                       laswp_variant, nb, **kw)
            _run_level(device, a_perm, symb, fids[half:], buffers,
                       pivots_of, strategy, gemm_mode, hybrid_cutoff,
                       laswp_variant, nb, **kw)
            return
        else:
            # Commit: only now do consumed cross-traversal Schur blocks
            # leave the host store (they were needed for any retry).
            if host_schur is not None:
                for c in consumed:
                    host_schur.pop(c, None)
            return


#: ``info`` sentinel for a front quarantined after persistent silent
#: data corruption (negative so it can never collide with LAPACK's
#: 1-based breakdown-column codes).
CORRUPT_FRONT_INFO = -2


def _quarantine_corrupt_front(device, a_perm, symb, fid, buffers,
                              pivots_of, diag_of, exc) -> None:
    """Terminal corruption rung for one front: zero it out and flag it.

    The front's buffer is replaced by zeros (its Schur block then
    extend-adds nothing into the parent, keeping ancestors finite and
    *their* factors identical to a run where this front contributed a
    zero update), pivots become the identity, and the diagnostics carry
    :data:`CORRUPT_FRONT_INFO` so the aggregated
    :class:`FactorReport` reports the front as failed — the caller sees
    a typed per-front failure, never silently wrong factors.
    """
    info = symb.fronts[fid]
    buffers[fid] = device.zeros((info.order, info.order),
                                dtype=a_perm.dtype)
    pivots_of[fid] = np.arange(info.sep_size, dtype=np.int64)
    if diag_of is not None:
        diag_of[fid] = (CORRUPT_FRONT_INFO, 0, 0.0, 1.0)
    device.recovery_log.record(
        "front-quarantine", site=f"front[{fid}]",
        detail=f"persistent corruption: {exc}")


def _rollback_level(fids, buffers, pivots_of, diag_of) -> None:
    """Undo a failed level attempt: free its buffers, drop its outputs."""
    for fid in fids:
        arr = buffers.pop(fid, None)
        if arr is not None:
            arr.free()
        pivots_of.pop(fid, None)
        if diag_of is not None:
            diag_of.pop(fid, None)


def _factor_level(device, a_perm, symb, fids, buffers, pivots_of, strategy,
                  gemm_mode, hybrid_cutoff, laswp_variant, nb, *,
                  host_schur=None, engine=None, diag_of=None,
                  pivot_tol=0.0, static_pivot=False,
                  replace_scale=None) -> list[int]:
    infos = [symb.fronts[f] for f in fids]
    for fid, info in zip(fids, infos):
        buffers[fid] = device.zeros((info.order, info.order),
                                    dtype=a_perm.dtype)

    consumed = _assemble_level(device, a_perm, symb, fids, buffers,
                               host_schur=host_schur)

    # Children buffers have been consumed by the extend-add; the factor
    # blocks were already harvested... they are still needed for download,
    # so buffers are retained until the end of the factorization.

    if strategy == "batched":
        _level_batched(device, symb, fids, buffers, pivots_of, gemm_mode,
                       hybrid_cutoff, laswp_variant, nb, engine=engine,
                       diag_of=diag_of, pivot_tol=pivot_tol,
                       static_pivot=static_pivot,
                       replace_scale=replace_scale)
    elif strategy == "looped":
        _level_looped(device, symb, fids, buffers, pivots_of,
                      diag_of=diag_of)
    else:
        _level_strumpack(device, symb, fids, buffers, pivots_of,
                         laswp_variant, nb, diag_of=diag_of,
                         pivot_tol=pivot_tol, static_pivot=static_pivot,
                         replace_scale=replace_scale)
    return consumed


def _assemble_level(device, a_perm, symb, fids, buffers, *,
                    host_schur=None) -> list[int]:
    """One kernel: gather A entries + extend-add children Schur blocks.

    Children factored in an earlier traversal (out-of-core mode) have
    their Schur complements on the host; those are re-uploaded first
    (H2D transfers the multi-traversal mode pays for) and used once.
    Returns the consumed child ids — the *caller* deletes them from
    ``host_schur`` once the level commits, so a retried level can
    re-stage them.  Staged uploads are freed on any exit path.
    """
    infos = [symb.fronts[f] for f in fids]

    staged: dict[int, DeviceArray] = {}

    def kernel() -> KernelCost:
        nbytes_r = 0.0
        nbytes_w = 0.0
        blocks = 0
        for fid, info in zip(fids, infos):
            F = buffers[fid].data
            idx = info.indices
            s = info.sep_size
            if info.order == 0:
                continue
            F[:s, :] = a_perm[idx[:s], :][:, idx].toarray()
            if info.upd_size and s:
                F[s:, :s] = a_perm[idx[s:], :][:, idx[:s]].toarray()
            nbytes_w += F.nbytes
            if info.children:
                pos = {int(g): l for l, g in enumerate(idx)}
                for c in info.children:
                    cinfo = symb.fronts[c]
                    cs = cinfo.sep_size
                    if cinfo.upd_size == 0:
                        continue
                    if c in staged:
                        schur = staged[c].data
                    else:
                        schur = buffers[c].data[cs:, cs:]
                    loc = np.array([pos[int(g)] for g in cinfo.upd],
                                   dtype=np.int64)
                    F[np.ix_(loc, loc)] += schur
                    nbytes_r += schur.nbytes
            blocks += 1
        return KernelCost(bytes_read=nbytes_r, bytes_written=nbytes_w,
                          blocks=max(blocks, 1), threads_per_block=256,
                          kernel_class="swap", memory_ramp=0.4)

    try:
        if host_schur:
            for info in infos:
                for c in info.children:
                    if c in host_schur and c not in staged:
                        staged[c] = device.from_host(host_schur[c])
        device.launch("assemble:extend_add", kernel)
    finally:
        for arr in staged.values():
            arr.free()
    return list(staged)


def _make_block_batches(device, symb, fids, buffers):
    """Per-level pointer setup: view batches of F11/F12/F21/F22."""
    s_vec, u_vec = [], []
    v11, v12, v21, v22 = [], [], [], []
    for fid in fids:
        info = symb.fronts[fid]
        s, u = info.sep_size, info.upd_size
        arr = buffers[fid]
        s_vec.append(s)
        u_vec.append(u)
        v11.append(arr[:s, :s])
        v12.append(arr[:s, s:])
        v21.append(arr[s:, :s])
        v22.append(arr[s:, s:])
    s_vec = np.array(s_vec, dtype=np.int64)
    u_vec = np.array(u_vec, dtype=np.int64)
    f11 = IrrBatch(device, v11, s_vec, s_vec)
    f12 = IrrBatch(device, v12, s_vec, u_vec)
    f21 = IrrBatch(device, v21, u_vec, s_vec)
    f22 = IrrBatch(device, v22, u_vec, u_vec)
    return s_vec, u_vec, f11, f12, f21, f22


def _apply_pivots_to_f12(device, f12: IrrBatch, pivots: list[np.ndarray],
                         engine=None) -> None:
    """One kernel: gather-apply each front's pivot swaps to its F12 rows."""

    def kernel() -> KernelCost:
        if engine is not None:
            return engine.exec_apply_pivots_f12(f12, pivots)
        nbytes = 0.0
        blocks = 0
        for i in range(len(f12)):
            s, u = f12.local_dims(i)
            if s == 0 or u == 0:
                continue
            b = f12.arrays[i].data
            for r in range(len(pivots[i])):
                p = int(pivots[i][r])
                if p != r:
                    b[[r, p], :] = b[[p, r], :]
            nbytes += 2 * s * u * f12.itemsize
            blocks += 1
        return KernelCost(bytes_read=nbytes / 2, bytes_written=nbytes / 2,
                          blocks=max(blocks, 1), kernel_class="swap",
                          memory_ramp=0.4)

    device.launch("irrlaswp:f12", kernel)


def _sub_batch(device, b: IrrBatch, sel: np.ndarray) -> IrrBatch:
    """View sub-batch over the selected member indices."""
    return IrrBatch(device, [b.arrays[i] for i in sel],
                    b.m_vec[sel], b.n_vec[sel])


def _quarantine_broken(device, bad, *batches) -> None:
    """One kernel: zero the given blocks of broken-down fronts.

    A front whose pivot block reported an unrecovered breakdown holds
    garbage in the columns at and beyond the breakdown; zeroing its
    F12/F21 factors and F22 Schur block keeps the extend-add (and any
    later solve attempt) finite.  Engine-independent, so both engines
    emit the identical launch.
    """

    def kernel() -> KernelCost:
        nbytes = 0.0
        for i in bad:
            for b in batches:
                view = b.matrix(int(i))
                view[...] = 0.0
                nbytes += view.nbytes
        return KernelCost(bytes_written=nbytes, blocks=max(len(bad), 1),
                          threads_per_block=256, kernel_class="swap",
                          memory_ramp=0.4)

    device.launch("breakdown:quarantine", kernel)


def _record_level_diag(diag_of, fids, piv) -> None:
    """Propagate each front's per-matrix pivot diagnostics (satellite of
    the robustness layer: the level loop previously never read
    ``pivots.info``)."""
    if diag_of is None:
        return
    for i, fid in enumerate(fids):
        diag_of[fid] = (int(piv.info[i]), int(piv.n_replaced[i]),
                        float(piv.min_pivot[i]), float(piv.growth[i]))


def _level_batched(device, symb, fids, buffers, pivots_of, gemm_mode,
                   hybrid_cutoff, laswp_variant, nb, *, engine=None,
                   diag_of=None, pivot_tol=0.0, static_pivot=False,
                   replace_scale=None) -> None:
    s_vec, u_vec, f11, f12, f21, f22 = _make_block_batches(
        device, symb, fids, buffers)

    piv = irr_getrf(device, f11, nb=nb, laswp_variant=laswp_variant,
                    pivot_tol=pivot_tol, static_pivot=static_pivot,
                    replace_scale=replace_scale, engine=engine)
    for fid, ip in zip(fids, piv.ipiv):
        pivots_of[fid] = ip
    _record_level_diag(diag_of, fids, piv)
    _level_offdiag(device, symb, fids, s_vec, u_vec, f11, f12, f21, f22,
                   piv, gemm_mode, hybrid_cutoff, engine=engine)


def _level_offdiag(device, symb, fids, s_vec, u_vec, f11, f12, f21, f22,
                   piv, gemm_mode, hybrid_cutoff, *, engine=None) -> None:
    """The off-diagonal updates of one batched level (everything after
    the pivot-block LU): breakdown gating, pivot application to F12, the
    two TRSMs and the Schur GEMM.  Split out of :func:`_level_batched`
    so the compiled-workload path can record it as its own step run."""
    smax = int(s_vec.max()) if len(s_vec) else 0
    umax = int(u_vec.max()) if len(u_vec) else 0
    if umax == 0 or smax == 0:
        return

    # Gate broken-down fronts out of the off-diagonal updates: zero their
    # blocks, then run TRSM/GEMM on the clean survivors only.  piv.info
    # is bitwise identical between engines, so the gating (and every
    # downstream launch) is too.
    bad = np.nonzero(piv.info != 0)[0]
    piv_list = piv.ipiv
    if len(bad):
        _quarantine_broken(device, bad, f12, f21, f22)
        good = np.setdiff1d(np.arange(len(fids), dtype=np.int64), bad)
        if not len(good):
            return
        s_vec, u_vec = s_vec[good], u_vec[good]
        f11 = _sub_batch(device, f11, good)
        f12 = _sub_batch(device, f12, good)
        f21 = _sub_batch(device, f21, good)
        f22 = _sub_batch(device, f22, good)
        piv_list = [piv.ipiv[int(i)] for i in good]
        smax = int(s_vec.max())
        umax = int(u_vec.max())
        if umax == 0 or smax == 0:
            return

    _apply_pivots_to_f12(device, f12, piv_list, engine=engine)
    irr_trsm(device, "L", "L", "N", "U", smax, umax, 1.0,
             f11, (0, 0), f12, (0, 0), name="irrtrsm:f12", engine=engine)
    irr_trsm(device, "R", "U", "N", "N", umax, smax, 1.0,
             f11, (0, 0), f21, (0, 0), name="irrtrsm:f21", engine=engine)

    if gemm_mode == "irr":
        irr_gemm(device, "N", "N", umax, umax, smax, -1.0, f21, (0, 0),
                 f12, (0, 0), 1.0, f22, (0, 0), name="irrgemm:schur",
                 engine=engine)
    elif gemm_mode == "vendor":
        _vendor_gemm_loop(device, fids, symb, f12, f21, f22,
                          range(len(f12)))
    else:  # hybrid (Fig 14)
        small = [i for i in range(len(f12))
                 if max(s_vec[i], u_vec[i]) <= hybrid_cutoff]
        large = [i for i in range(len(f12))
                 if max(s_vec[i], u_vec[i]) > hybrid_cutoff]
        if small:
            sel = np.array(small, dtype=np.int64)
            irr_gemm(device, "N", "N",
                     int(u_vec[sel].max()), int(u_vec[sel].max()),
                     int(s_vec[sel].max()), -1.0,
                     _sub_batch(device, f21, sel), (0, 0),
                     _sub_batch(device, f12, sel), (0, 0), 1.0,
                     _sub_batch(device, f22, sel), (0, 0),
                     name="irrgemm:schur", engine=engine)
        _vendor_gemm_loop(device, fids, symb, f12, f21, f22, large)


def _vendor_gemm_loop(device, fids, symb, f12, f21, f22, which) -> None:
    for i in which:
        s, u = f12.local_dims(i)
        if s == 0 or u == 0:
            continue
        vendor_gemm(device, "N", "N", -1.0, f21.arrays[i].data,
                    f12.arrays[i].data, 1.0, f22.arrays[i].data,
                    name="cublas_gemm:schur")


def _level_looped(device, symb, fids, buffers, pivots_of, *,
                  diag_of=None) -> None:
    """cuSOLVER/cuBLAS called in a loop over the level's fronts.

    The vendor model has no static-pivot mode (cuSOLVER does not), but
    its ``devInfo`` status is checked per front: a broken-down front is
    quarantined (F12/F21/F22 zeroed, off-diagonal updates skipped) and
    reported through ``diag_of`` instead of feeding garbage onward.
    """
    info_arr = np.zeros(1, dtype=np.int64)
    for fid in fids:
        info = symb.fronts[fid]
        s, u = info.sep_size, info.upd_size
        arr = buffers[fid]
        if s == 0:
            pivots_of[fid] = np.empty(0, dtype=np.int64)
            continue
        info_arr[0] = 0
        ipiv = vendor_getrf(device, arr[:s, :s], info_out=info_arr)
        pivots_of[fid] = ipiv
        if diag_of is not None:
            diag_of[fid] = (int(info_arr[0]), 0, np.inf, 1.0)
        if int(info_arr[0]) != 0:
            if u:
                def zero_blocks(arr=arr, s=s) -> KernelCost:
                    arr.data[:s, s:] = 0.0
                    arr.data[s:, :s] = 0.0
                    arr.data[s:, s:] = 0.0
                    return KernelCost(
                        bytes_written=float(arr.data.nbytes -
                                            s * s * arr.data.itemsize),
                        blocks=1, kernel_class="swap", memory_ramp=0.4)

                device.launch("breakdown:quarantine", zero_blocks)
            continue
        if u == 0:
            continue
        _apply_pivots_single(device, arr.data[:s, s:], ipiv)
        vendor_trsm(device, "L", "L", "N", "U", 1.0, arr.data[:s, :s],
                    arr.data[:s, s:], name="cusolver_trsm:f12")
        vendor_trsm(device, "R", "U", "N", "N", 1.0, arr.data[:s, :s],
                    arr.data[s:, :s], name="cusolver_trsm:f21")
        vendor_gemm(device, "N", "N", -1.0, arr.data[s:, :s],
                    arr.data[:s, s:], 1.0, arr.data[s:, s:],
                    name="cublas_gemm:schur")


def _apply_pivots_single(device, b: np.ndarray, ipiv: np.ndarray) -> None:
    def kernel() -> KernelCost:
        for r in range(len(ipiv)):
            p = int(ipiv[r])
            if p != r:
                b[[r, p], :] = b[[p, r], :]
        return KernelCost(bytes_read=b.nbytes, bytes_written=b.nbytes,
                          blocks=1, kernel_class="swap", memory_ramp=0.3)

    device.launch("laswp:f12", kernel)


def _level_strumpack(device, symb, fids, buffers, pivots_of,
                     laswp_variant, nb, *, diag_of=None, pivot_tol=0.0,
                     static_pivot=False, replace_scale=None) -> None:
    """STRUMPACK v6.3.1 model: naive batch kernels for pivot blocks
    ≤ 32×32, looped vendor calls above, and a synchronization after every
    operation."""
    small = [f for f in fids
             if symb.fronts[f].sep_size <= STRUMPACK_BATCH_LIMIT]
    large = [f for f in fids
             if symb.fronts[f].sep_size > STRUMPACK_BATCH_LIMIT]

    if small:
        s_vec, u_vec, f11, f12, f21, f22 = _make_block_batches(
            device, symb, small, buffers)
        # the naive batch kernel: unblocked, column-wise, a launch per
        # elementary operation (this is what "naive" costs).
        piv = irr_getrf(device, f11, nb=max(1, nb // 4),
                        panel="columnwise", laswp_variant="looped",
                        pivot_tol=pivot_tol, static_pivot=static_pivot,
                        replace_scale=replace_scale)
        device.synchronize()
        for fid, ip in zip(small, piv.ipiv):
            pivots_of[fid] = ip
        _record_level_diag(diag_of, small, piv)
        smax = int(s_vec.max()) if len(s_vec) else 0
        umax = int(u_vec.max()) if len(u_vec) else 0
        if smax and umax:
            bad = np.nonzero(piv.info != 0)[0]
            piv_list = piv.ipiv
            good = np.arange(len(small), dtype=np.int64)
            if len(bad):
                _quarantine_broken(device, bad, f12, f21, f22)
                device.synchronize()
                good = np.setdiff1d(good, bad)
                s_vec, u_vec = s_vec[good], u_vec[good]
                f11 = _sub_batch(device, f11, good)
                f12 = _sub_batch(device, f12, good)
                f21 = _sub_batch(device, f21, good)
                f22 = _sub_batch(device, f22, good)
                piv_list = [piv.ipiv[int(i)] for i in good]
                smax = int(s_vec.max()) if len(s_vec) else 0
                umax = int(u_vec.max()) if len(u_vec) else 0
        if smax and umax and len(good):
            _apply_pivots_to_f12(device, f12, piv_list)
            device.synchronize()
            irr_trsm(device, "L", "L", "N", "U", smax, umax, 1.0,
                     f11, (0, 0), f12, (0, 0), base_nb=8)
            device.synchronize()
            irr_trsm(device, "R", "U", "N", "N", umax, smax, 1.0,
                     f11, (0, 0), f21, (0, 0), base_nb=8)
            device.synchronize()
            irr_gemm(device, "N", "N", umax, umax, smax, -1.0, f21, (0, 0),
                     f12, (0, 0), 1.0, f22, (0, 0), name="irrgemm:schur")
            device.synchronize()

    for fid in large:
        _level_looped(device, symb, [fid], buffers, pivots_of,
                      diag_of=diag_of)
        device.synchronize()
