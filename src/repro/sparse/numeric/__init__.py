"""Numeric factorization and solve phases."""

from .cpu_factor import factor_front_blocks, multifrontal_factor_cpu
from .factors import FrontFactors, MultifrontalFactors, assemble_front
from .shard import RankAssignment, ShardedFactorResult, \
    multifrontal_factor_sharded, partition_tree
from .solve_plan import DeviceFactorCache, LevelFactorBlocks, \
    LevelSolvePlan, SolveBucket, SolvePlan
from .triangular import multifrontal_solve

__all__ = [
    "multifrontal_factor_cpu", "factor_front_blocks",
    "FrontFactors", "MultifrontalFactors", "assemble_front",
    "multifrontal_solve",
    "multifrontal_factor_sharded", "ShardedFactorResult",
    "partition_tree", "RankAssignment",
    "SolvePlan", "DeviceFactorCache", "LevelSolvePlan", "SolveBucket",
    "LevelFactorBlocks",
]
