"""GPU triangular solve through the assembly tree (phase 3, batched).

The solve mirrors the factorization's batching: all fronts of a level are
handled with one kernel sequence — a pivot/gather kernel, a batched
triangular solve (:func:`~repro.batched.trsm.irr_trsm`) on the pivot
blocks, and a scatter-update kernel — instead of per-front launches.
Because the permuted numbering gives every front's separator a
*contiguous* index range, the per-front right-hand-side blocks are plain
views into the global solution vector; only the update sets need
gather/scatter.

Two host execution paths produce bitwise-identical solutions and
identical simulated launch records:

* ``engine="naive"`` — the reference: factors are streamed level-by-level
  (upload, use, free), pivots applied row-by-row, updates scattered
  front-by-front.
* ``engine="bucketed"`` (default) — a :class:`SolvePlan` precomputes the
  per-level gather/scatter index structure once and a
  :class:`DeviceFactorCache` keeps factor blocks device-resident across
  repeated solves; pass ``plan=``/``cache=`` (built by
  :class:`~repro.sparse.solver.SparseLU` or by hand) to amortize them,
  or omit them for a self-contained one-shot solve (which streams, so it
  leaves no device allocations behind).

``rhs_block`` caps how many right-hand-side columns flow through the
sweeps per pass — many-RHS solves trade one pass over the factors for
bounded per-level scratch, like a blocked LAPACK ``getrs``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...batched.engine import resolve_engine
from ...batched.interface import IrrBatch
from ...batched.trsm import irr_trsm
from ...device.kernel import KernelCost
from ...device.memory import DeviceOutOfMemory
from ...device.simulator import Device
from ...errors import ResourceExhausted
from ...recovery import RecoveryLog
from .factors import MultifrontalFactors
from .report import check_factors_ok
from .solve_plan import DeviceFactorCache, SolvePlan

__all__ = ["multifrontal_solve_gpu", "GpuSolveResult"]


@dataclass
class GpuSolveResult:
    """Solution plus the simulated performance of the solve.

    ``recovery`` holds the resilience actions (transfer retries, cache
    evictions) taken during this solve — empty for a clean run.
    """

    x: np.ndarray
    elapsed: float
    counters: dict
    recovery: RecoveryLog | None = None


def _upload_level(device: Device, factors: MultifrontalFactors,
                  fids: list[int], which: str) -> IrrBatch:
    """Upload one factor block (f11/f12/f21) of a level as a batch.

    Zero-sized blocks (a front with no update rows) allocate an empty
    device array without crossing the bus — nothing to transfer, so no
    PCIE latency is charged for them.
    """
    arrays = []
    m_vec, n_vec = [], []
    for fid in fids:
        block = getattr(factors.fronts[fid], which)
        arrays.append(device.from_host(block) if block.size else
                      device.empty(block.shape, dtype=block.dtype))
        m_vec.append(block.shape[0])
        n_vec.append(block.shape[1])
    return IrrBatch(device, arrays,
                    np.array(m_vec, dtype=np.int64),
                    np.array(n_vec, dtype=np.int64))


def _promote_rhs(factors: MultifrontalFactors,
                 b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Copy ``b`` promoted against the factor dtype; report 1-D squeeze."""
    bh = np.array(b, dtype=np.result_type(
        np.asarray(b).dtype,
        factors.fronts[0].f11.dtype if factors.fronts else np.float64),
        copy=True)
    squeeze = bh.ndim == 1
    if squeeze:
        bh = bh[:, None]
    if bh.shape[0] != factors.symb.n:
        raise ValueError(f"right-hand side has {bh.shape[0]} rows, "
                         f"expected {factors.symb.n}")
    return bh, squeeze


def _solve_naive(device: Device, factors: MultifrontalFactors,
                 bh: np.ndarray, stream) -> tuple:
    """Reference path: streamed factors, per-front pivot/update loops."""
    x_dev = device.from_host(bh)
    x = x_dev.data
    levels = factors.symb.levels()
    live: list = []     # streamed factor batches of the level in flight

    def stream_level(fids, which_a, which_b) -> tuple:
        """Upload a level's two factor batches, tracked for cleanup."""
        a = _upload_level(device, factors, fids, which_a)
        live.append(a)
        b = _upload_level(device, factors, fids, which_b)
        live.append(b)
        return a, b

    try:
        return _naive_sweeps(device, factors, x_dev, x, levels,
                             stream_level, live, stream)
    finally:
        # DeviceArray/IrrBatch frees are idempotent, so unwinding after
        # a mid-sweep failure releases exactly the still-live uploads.
        for batch in live:
            batch.free()
        x_dev.free()


def _naive_sweeps(device, factors, x_dev, x, levels, stream_level, live,
                  stream) -> tuple:
    symb = factors.symb
    nrhs = x.shape[1]
    itemsize = x.dtype.itemsize

    with device.timed_region() as region:
        # ---- forward sweep: y = L^{-1} (block-P) b, leaves -> root -----
        for fids in levels:
            fids = [f for f in fids if symb.fronts[f].sep_size > 0]
            if not fids:
                continue
            f11, f21 = stream_level(fids, "f11", "f21")
            rhs_views = [x_dev[symb.fronts[f].sep_begin:
                               symb.fronts[f].sep_end, :] for f in fids]
            rhs = IrrBatch(device, rhs_views,
                           f11.m_vec, np.full(len(fids), nrhs,
                                              dtype=np.int64))

            def apply_pivots(fids=fids) -> KernelCost:
                nbytes = 0.0
                for f in fids:
                    info = symb.fronts[f]
                    fac = factors.fronts[f]
                    blk = x[info.sep_begin:info.sep_end, :]
                    for r in range(info.sep_size):
                        p = int(fac.ipiv[r])
                        if p != r:
                            blk[[r, p], :] = blk[[p, r], :]
                            nbytes += 4 * nrhs * itemsize
                return KernelCost(bytes_read=nbytes / 2,
                                  bytes_written=nbytes / 2,
                                  blocks=max(len(fids), 1),
                                  kernel_class="swap", memory_ramp=0.3)

            device.launch("solve:pivots", apply_pivots, stream=stream)
            irr_trsm(device, "L", "L", "N", "U", int(f11.max_m), nrhs, 1.0,
                     f11, (0, 0), rhs, (0, 0), stream=stream,
                     name="irrtrsm:fwd")

            def scatter_update(fids=fids) -> KernelCost:
                flops = 0.0
                nbytes = 0.0
                for li, f in enumerate(fids):
                    info = symb.fronts[f]
                    if info.upd_size == 0:
                        continue
                    y_sep = x[info.sep_begin:info.sep_end, :]
                    upd = f21.arrays[li].data @ y_sep
                    # scatter-subtract into the global vector
                    np.subtract.at(x, info.upd, upd)
                    flops += 2.0 * info.upd_size * info.sep_size * nrhs
                    nbytes += (info.upd_size * info.sep_size +
                               2 * info.upd_size * nrhs) * itemsize
                return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                                  bytes_written=nbytes * 0.3,
                                  blocks=max(len(fids), 1),
                                  kernel_class="gemm_irr", memory_ramp=0.5)

            device.launch("solve:scatter", scatter_update, stream=stream)
            f11.free()
            f21.free()
            live.clear()

        # ---- backward sweep: x = U^{-1} y, root -> leaves ---------------
        for fids in reversed(levels):
            fids = [f for f in fids if symb.fronts[f].sep_size > 0]
            if not fids:
                continue
            f11, f12 = stream_level(fids, "f11", "f12")
            rhs_views = [x_dev[symb.fronts[f].sep_begin:
                               symb.fronts[f].sep_end, :] for f in fids]
            rhs = IrrBatch(device, rhs_views,
                           f11.m_vec, np.full(len(fids), nrhs,
                                              dtype=np.int64))

            def gather_update(fids=fids) -> KernelCost:
                flops = 0.0
                nbytes = 0.0
                for li, f in enumerate(fids):
                    info = symb.fronts[f]
                    if info.upd_size == 0:
                        continue
                    x_upd = x[info.upd, :]
                    x[info.sep_begin:info.sep_end, :] -= \
                        f12.arrays[li].data @ x_upd
                    flops += 2.0 * info.sep_size * info.upd_size * nrhs
                    nbytes += (info.sep_size * info.upd_size +
                               2 * info.sep_size * nrhs) * itemsize
                return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                                  bytes_written=nbytes * 0.3,
                                  blocks=max(len(fids), 1),
                                  kernel_class="gemm_irr", memory_ramp=0.5)

            device.launch("solve:gather", gather_update, stream=stream)
            irr_trsm(device, "L", "U", "N", "N", int(f11.max_m), nrhs, 1.0,
                     f11, (0, 0), rhs, (0, 0), stream=stream,
                     name="irrtrsm:bwd")
            f11.free()
            f12.free()
            live.clear()

    return x_dev.to_host(), region


def _solve_planned(device: Device, factors: MultifrontalFactors,
                   bh: np.ndarray, stream, plan: SolvePlan,
                   cache: DeviceFactorCache, rhs_block: int | None) -> tuple:
    """Plan-driven path: cached factors, vectorized level kernels."""
    eng = plan.engine
    nrhs_total = bh.shape[1]
    itemsize = bh.dtype.itemsize
    block = nrhs_total if rhs_block is None else max(int(rhs_block), 1)

    x_dev = device.from_host(bh)
    levels = plan.levels
    streamed: list = []   # the owned (streamed) acquire in flight, if any

    def acquire(li: int, part: str):
        blocks, owned = cache.acquire(li, part)
        if owned:
            streamed.append(blocks)
        return blocks, owned

    def release(blocks, owned) -> None:
        if owned:
            blocks.free()
            streamed.clear()

    try:
        with device.timed_region() as region:
            for c0 in range(0, max(nrhs_total, 1), block):
                c1 = min(c0 + block, nrhs_total)
                nrhs = c1 - c0
                xb = x_dev.data[:, c0:c1]
                rhs_batches = [
                    IrrBatch(device,
                             [x_dev[int(s):int(s + m), c0:c1]
                              for s, m in zip(lp.sep_starts, lp.sep_m)],
                             lp.sep_m,
                             np.full(lp.nfronts, nrhs, dtype=np.int64))
                    for lp in levels]

                # ---- forward sweep: leaves -> root ---------------------
                for li, lp in enumerate(levels):
                    blocks, owned = acquire(li, "fwd")
                    device.launch(
                        "solve:pivots",
                        lambda lp=lp: eng.exec_solve_pivots(
                            xb, lp, nrhs, itemsize), stream=stream)
                    irr_trsm(device, "L", "L", "N", "U", lp.max_sep, nrhs,
                             1.0, blocks.f11, (0, 0), rhs_batches[li],
                             (0, 0), stream=stream, name="irrtrsm:fwd",
                             engine=eng)
                    device.launch(
                        "solve:scatter",
                        lambda lp=lp, st=blocks.f21_stacks:
                            eng.exec_solve_scatter(xb, lp, st, nrhs,
                                                   itemsize),
                        stream=stream)
                    release(blocks, owned)

                # ---- backward sweep: root -> leaves --------------------
                for li in range(len(levels) - 1, -1, -1):
                    lp = levels[li]
                    blocks, owned = acquire(li, "bwd")
                    device.launch(
                        "solve:gather",
                        lambda lp=lp, st=blocks.f12_stacks:
                            eng.exec_solve_gather(xb, lp, st, nrhs,
                                                  itemsize),
                        stream=stream)
                    irr_trsm(device, "L", "U", "N", "N", lp.max_sep, nrhs,
                             1.0, blocks.f11, (0, 0), rhs_batches[li],
                             (0, 0), stream=stream, name="irrtrsm:bwd",
                             engine=eng)
                    release(blocks, owned)

        return x_dev.to_host(), region
    finally:
        for blocks in streamed:
            blocks.free()
        x_dev.free()


def multifrontal_solve_gpu(device: Device, factors: MultifrontalFactors,
                           b: np.ndarray, *, stream=None,
                           engine="bucketed",
                           plan: SolvePlan | None = None,
                           cache: DeviceFactorCache | None = None,
                           rhs_block: int | None = None) -> GpuSolveResult:
    """Solve the permuted system on the device with per-level batching.

    ``engine="naive"`` (or ``None``) runs the streamed per-front
    reference path; the default bucketed engine runs the plan-driven
    path.  A ``plan`` must come from :class:`SolvePlan` over these
    ``factors``; a ``cache`` must wrap that plan (its engine is used for
    the TRSM calls, so plan-cache state persists across solves).  With no
    ``cache``, a one-shot streaming cache is used and freed — repeated
    callers should hold both and pass them in (``SparseLU.solve`` does).

    Factors whose :class:`FactorReport` records an unrecovered pivot
    breakdown are refused with a :class:`~repro.errors.FactorizationError`
    (substituting through them would return garbage).

    Resource exhaustion: a device OOM the cache could not relieve by
    LRU-spilling resident levels is re-raised as a typed
    :class:`~repro.errors.ResourceExhausted` carrying the recovery log
    of the actions already taken; a failed solve never strands device
    allocations (``device.allocated_bytes`` returns to its pre-call
    value).
    """
    check_factors_ok(factors, "solve on the device")
    bh, squeeze = _promote_rhs(factors, b)
    eng = resolve_engine(engine if plan is None else plan.engine)
    mark = device.recovery_log.mark()
    try:
        if eng is None:
            out, region = _solve_naive(device, factors, bh, stream)
        else:
            if plan is None:
                plan = SolvePlan(factors, engine=eng)
            one_shot = cache is None
            if one_shot:
                cache = DeviceFactorCache(device, factors, plan,
                                          _stream_all=True)
            try:
                out, region = _solve_planned(device, factors, bh, stream,
                                             plan, cache, rhs_block)
            finally:
                if one_shot:
                    cache.free()
    except DeviceOutOfMemory as exc:
        recovery = device.recovery_log.since(mark)
        raise ResourceExhausted(
            f"device solve ran out of memory with nothing left to evict "
            f"({recovery.summary()})", log=recovery) from exc
    counters = {k: region[k] for k in region if k != "elapsed"}
    return GpuSolveResult(x=out[:, 0] if squeeze else out,
                          elapsed=region["elapsed"], counters=counters,
                          recovery=device.recovery_log.since(mark))
