"""GPU triangular solve through the assembly tree (phase 3, batched).

The solve mirrors the factorization's batching: all fronts of a level are
handled with one kernel sequence — a pivot/gather kernel, a batched
triangular solve (:func:`~repro.batched.trsm.irr_trsm`) on the pivot
blocks, and a scatter-update kernel — instead of per-front launches.
Because the permuted numbering gives every front's separator a
*contiguous* index range, the per-front right-hand-side blocks are plain
views into the global solution vector; only the update sets need
gather/scatter.

Factors are uploaded level-by-level (H2D transfers are accounted); a
production solver would keep them resident after the factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...batched.interface import IrrBatch
from ...batched.trsm import irr_trsm
from ...device.kernel import KernelCost
from ...device.simulator import Device
from .factors import MultifrontalFactors

__all__ = ["multifrontal_solve_gpu", "GpuSolveResult"]


@dataclass
class GpuSolveResult:
    """Solution plus the simulated performance of the solve."""

    x: np.ndarray
    elapsed: float
    counters: dict


def _upload_level(device: Device, factors: MultifrontalFactors,
                  fids: list[int], which: str) -> IrrBatch:
    """Upload one factor block (f11/f12/f21) of a level as a batch."""
    arrays = []
    m_vec, n_vec = [], []
    for fid in fids:
        block = getattr(factors.fronts[fid], which)
        arrays.append(device.from_host(
            block if block.size else block.reshape(max(block.shape[0], 0),
                                                   max(block.shape[1], 0))))
        m_vec.append(block.shape[0])
        n_vec.append(block.shape[1])
    return IrrBatch(device, arrays,
                    np.array(m_vec, dtype=np.int64),
                    np.array(n_vec, dtype=np.int64))


def multifrontal_solve_gpu(device: Device, factors: MultifrontalFactors,
                           b: np.ndarray, *, stream=None) -> GpuSolveResult:
    """Solve the permuted system on the device with per-level batching."""
    symb = factors.symb
    bh = np.array(b, dtype=np.result_type(
        np.asarray(b).dtype,
        factors.fronts[0].f11.dtype if factors.fronts else np.float64),
        copy=True)
    squeeze = bh.ndim == 1
    if squeeze:
        bh = bh[:, None]
    if bh.shape[0] != symb.n:
        raise ValueError(
            f"right-hand side has {bh.shape[0]} rows, expected {symb.n}")
    nrhs = bh.shape[1]
    itemsize = bh.dtype.itemsize

    x_dev = device.from_host(bh)
    x = x_dev.data
    levels = symb.levels()

    with device.timed_region() as region:
        # ---- forward sweep: y = L^{-1} (block-P) b, leaves -> root -----
        for fids in levels:
            fids = [f for f in fids if symb.fronts[f].sep_size > 0]
            if not fids:
                continue
            f11 = _upload_level(device, factors, fids, "f11")
            f21 = _upload_level(device, factors, fids, "f21")
            rhs_views = [x_dev[symb.fronts[f].sep_begin:
                               symb.fronts[f].sep_end, :] for f in fids]
            rhs = IrrBatch(device, rhs_views,
                           f11.m_vec, np.full(len(fids), nrhs,
                                              dtype=np.int64))

            def apply_pivots(fids=fids) -> KernelCost:
                nbytes = 0.0
                for f in fids:
                    info = symb.fronts[f]
                    fac = factors.fronts[f]
                    blk = x[info.sep_begin:info.sep_end, :]
                    for r in range(info.sep_size):
                        p = int(fac.ipiv[r])
                        if p != r:
                            blk[[r, p], :] = blk[[p, r], :]
                            nbytes += 4 * nrhs * itemsize
                return KernelCost(bytes_read=nbytes / 2,
                                  bytes_written=nbytes / 2,
                                  blocks=max(len(fids), 1),
                                  kernel_class="swap", memory_ramp=0.3)

            device.launch("solve:pivots", apply_pivots, stream=stream)
            irr_trsm(device, "L", "L", "N", "U", int(f11.max_m), nrhs, 1.0,
                     f11, (0, 0), rhs, (0, 0), stream=stream,
                     name="irrtrsm:fwd")

            def scatter_update(fids=fids) -> KernelCost:
                flops = 0.0
                nbytes = 0.0
                for li, f in enumerate(fids):
                    info = symb.fronts[f]
                    if info.upd_size == 0:
                        continue
                    y_sep = x[info.sep_begin:info.sep_end, :]
                    upd = f21.arrays[li].data @ y_sep
                    # scatter-subtract into the global vector
                    np.subtract.at(x, info.upd, upd)
                    flops += 2.0 * info.upd_size * info.sep_size * nrhs
                    nbytes += (info.upd_size * info.sep_size +
                               2 * info.upd_size * nrhs) * itemsize
                return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                                  bytes_written=nbytes * 0.3,
                                  blocks=max(len(fids), 1),
                                  kernel_class="gemm_irr", memory_ramp=0.5)

            device.launch("solve:scatter", scatter_update, stream=stream)
            f11.free()
            f21.free()

        # ---- backward sweep: x = U^{-1} y, root -> leaves ---------------
        for fids in reversed(levels):
            fids = [f for f in fids if symb.fronts[f].sep_size > 0]
            if not fids:
                continue
            f11 = _upload_level(device, factors, fids, "f11")
            f12 = _upload_level(device, factors, fids, "f12")
            rhs_views = [x_dev[symb.fronts[f].sep_begin:
                               symb.fronts[f].sep_end, :] for f in fids]
            rhs = IrrBatch(device, rhs_views,
                           f11.m_vec, np.full(len(fids), nrhs,
                                              dtype=np.int64))

            def gather_update(fids=fids) -> KernelCost:
                flops = 0.0
                nbytes = 0.0
                for li, f in enumerate(fids):
                    info = symb.fronts[f]
                    if info.upd_size == 0:
                        continue
                    x_upd = x[info.upd, :]
                    x[info.sep_begin:info.sep_end, :] -= \
                        f12.arrays[li].data @ x_upd
                    flops += 2.0 * info.sep_size * info.upd_size * nrhs
                    nbytes += (info.sep_size * info.upd_size +
                               2 * info.sep_size * nrhs) * itemsize
                return KernelCost(flops=flops, bytes_read=nbytes * 0.7,
                                  bytes_written=nbytes * 0.3,
                                  blocks=max(len(fids), 1),
                                  kernel_class="gemm_irr", memory_ramp=0.5)

            device.launch("solve:gather", gather_update, stream=stream)
            irr_trsm(device, "L", "U", "N", "N", int(f11.max_m), nrhs, 1.0,
                     f11, (0, 0), rhs, (0, 0), stream=stream,
                     name="irrtrsm:bwd")
            f11.free()
            f12.free()

    out = x_dev.to_host()
    x_dev.free()
    counters = {k: region[k] for k in region if k != "elapsed"}
    return GpuSolveResult(x=out[:, 0] if squeeze else out,
                          elapsed=region["elapsed"], counters=counters)