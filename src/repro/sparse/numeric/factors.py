"""Factor storage shared by the CPU and GPU numeric phases."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..symbolic.analysis import SymbolicFactorization

__all__ = ["FrontFactors", "MultifrontalFactors"]


@dataclass
class FrontFactors:
    """Factored blocks of one front.

    ``f11`` holds the packed LU of the pivot block (unit-lower L, U on and
    above the diagonal) with pivot vector ``ipiv`` (pivoting restricted to
    the pivot block, §III-A); ``f12`` is ``L⁻¹·P·F12`` (the U12 block) and
    ``f21`` is ``F21·U⁻¹`` (the L21 block).

    The trailing fields are the front's pivot-breakdown diagnostics (see
    :class:`~repro.sparse.numeric.report.FactorReport`): ``info`` is the
    LAPACK-style 1-based column of the first unrecovered breakdown in the
    pivot block (0 = clean; a failed front stores zeroed ``f12``/``f21``
    so nothing downstream meets Inf/NaN), ``n_replaced`` counts
    statically replaced pivots, ``min_pivot`` is the smallest ``|pivot|``
    met and ``growth`` the element growth factor ``max|LU|/max|F11|``.
    """

    f11: np.ndarray
    ipiv: np.ndarray
    f12: np.ndarray
    f21: np.ndarray
    info: int = 0
    n_replaced: int = 0
    min_pivot: float = np.inf
    growth: float = 1.0


@dataclass
class MultifrontalFactors:
    """All front factors, in the symbolic postorder.

    ``report`` carries the factorization-wide breakdown diagnostics
    (``None`` for factors produced by paths that predate the robustness
    layer, e.g. the comparator baselines).
    """

    symb: SymbolicFactorization
    fronts: list[FrontFactors] = field(default_factory=list)
    report: "FactorReport | None" = None

    def nnz(self) -> int:
        return sum(f.f11.size + f.f12.size + f.f21.size
                   for f in self.fronts)

    def front(self, fid: int) -> FrontFactors:
        return self.fronts[fid]


def assemble_front(a_perm, info, child_schur: list[tuple[np.ndarray,
                                                         np.ndarray]]
                   ) -> np.ndarray:
    """Build one dense frontal matrix: A entries + children extend-add.

    ``child_schur`` is a list of ``(S, upd_indices)`` contributions; each
    child update index must appear in this front's index set (guaranteed
    by the symbolic analysis).
    """
    idx = info.indices
    nf = info.order
    s = info.sep_size
    F = np.zeros((nf, nf), dtype=a_perm.dtype)
    if nf == 0:
        return F
    # New A entries: rows and columns that touch the separator.
    block = a_perm[idx[:s], :][:, idx].toarray()
    F[:s, :] = block
    if info.upd_size and s:
        F[s:, :s] = a_perm[idx[s:], :][:, idx[:s]].toarray()
    # Extend-add the children's Schur complements.
    if child_schur:
        pos = {int(g): l for l, g in enumerate(idx)}
        for schur, upd in child_schur:
            if len(upd) == 0:
                continue
            loc = np.array([pos[int(g)] for g in upd], dtype=np.int64)
            F[np.ix_(loc, loc)] += schur
    return F
