"""Reference CPU multifrontal LU (postorder traversal, LAPACK blocks).

The numerical ground truth the GPU backends are tested against, and the
"CPU, 16 OpenMP threads" row of Table I.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ...batched.panel import factor_panel_block
from ..symbolic.analysis import SymbolicFactorization
from .factors import FrontFactors, MultifrontalFactors, assemble_front

__all__ = ["multifrontal_factor_cpu", "factor_front_blocks"]


def factor_front_blocks(F: np.ndarray, s: int
                        ) -> tuple[FrontFactors, np.ndarray]:
    """Partial LU of a dense front: factor the leading s×s block, update.

    Returns the stored factors and the trailing Schur complement.
    Pivoting is restricted to the pivot block; a front with an exactly
    singular pivot block raises (static pivoting via MC64 is the paper's
    answer to that).
    """
    nf = F.shape[0]
    f11 = F[:s, :s]
    ipiv = np.arange(s, dtype=np.int64)
    info = np.zeros(1, dtype=np.int64)
    factor_panel_block(f11, s, ipiv, info, 0, 0)
    if info[0] != 0:
        raise np.linalg.LinAlgError(
            f"zero pivot at position {int(info[0])} in a frontal matrix")
    f12 = F[:s, s:]
    f21 = F[s:, :s]
    if nf > s and s > 0:
        # apply the pivot-block row interchanges to F12
        for r in range(s):
            p = int(ipiv[r])
            if p != r:
                f12[[r, p], :] = f12[[p, r], :]
        f12[...] = sla.solve_triangular(f11, f12, lower=True,
                                        unit_diagonal=True,
                                        check_finite=False)
        f21[...] = sla.solve_triangular(f11.T, f21.T, lower=True,
                                        unit_diagonal=False,
                                        check_finite=False).T
        schur = F[s:, s:] - f21 @ f12
    else:
        # s == 0 (an empty separator from a disconnected bisection) must
        # pass the assembled child contributions through unchanged.
        schur = np.array(F[s:, s:], copy=True)
    return FrontFactors(f11=f11.copy(), ipiv=ipiv, f12=f12.copy(),
                        f21=f21.copy()), schur


def multifrontal_factor_cpu(a_perm: sp.spmatrix,
                            symb: SymbolicFactorization
                            ) -> MultifrontalFactors:
    """Factor the permuted sparse matrix front by front (postorder)."""
    a_perm = sp.csr_matrix(a_perm)
    schur: list[tuple[np.ndarray, np.ndarray] | None] = \
        [None] * len(symb.fronts)
    out = MultifrontalFactors(symb=symb)

    for fid, info in enumerate(symb.fronts):
        contribs = []
        for c in info.children:
            contribs.append(schur[c])
            schur[c] = None
        F = assemble_front(a_perm, info, [x for x in contribs if x])
        fac, S = factor_front_blocks(F, info.sep_size)
        out.fronts.append(fac)
        if info.parent >= 0:
            schur[fid] = (S, info.upd)
    return out
