"""Reference CPU multifrontal LU (postorder traversal, LAPACK blocks).

The numerical ground truth the GPU backends are tested against, and the
"CPU, 16 OpenMP threads" row of Table I.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ...batched.panel import PivotControl, factor_panel_block
from ...errors import FactorizationError
from ..symbolic.analysis import SymbolicFactorization
from .factors import FrontFactors, MultifrontalFactors, assemble_front
from .report import FactorReport

__all__ = ["multifrontal_factor_cpu", "factor_front_blocks"]


def factor_front_blocks(F: np.ndarray, s: int, *,
                        pivot_tol: float = 0.0, static_pivot: bool = False,
                        replace_scale: float | None = None,
                        raise_on_breakdown: bool = True
                        ) -> tuple[FrontFactors, np.ndarray]:
    """Partial LU of a dense front: factor the leading s×s block, update.

    Returns the stored factors and the trailing Schur complement.
    Pivoting is restricted to the pivot block; a pivot with magnitude
    below ``max(tiny, pivot_tol·max|F11|)`` breaks down.  With
    ``static_pivot=True`` broken pivots are replaced by
    ``±replace_scale·max|F11|`` and counted; an *unrecovered* breakdown
    raises a :class:`~repro.errors.FactorizationError` (the MC64 /
    static-pivoting combination is the paper's answer to that), or — with
    ``raise_on_breakdown=False`` — records ``info`` on the returned
    factors, zeroes ``f12``/``f21`` and returns a zero Schur complement
    so the caller can keep traversing without meeting Inf/NaN.
    """
    nf = F.shape[0]
    f11 = F[:s, :s]
    ipiv = np.arange(s, dtype=np.int64)
    info = np.zeros(1, dtype=np.int64)
    anorm = float(np.max(np.abs(f11))) if f11.size else 0.0
    ctrl = PivotControl(np.array([anorm]), F.dtype, pivot_tol=pivot_tol,
                        static_pivot=static_pivot,
                        replace_scale=replace_scale)
    factor_panel_block(f11, s, ipiv, info, 0, 0, ctrl=ctrl)
    growth = 1.0
    if f11.size and anorm > 0.0:
        growth = float(np.max(np.abs(f11))) / anorm
    if info[0] != 0:
        if raise_on_breakdown:
            raise FactorizationError(
                f"zero pivot (or |pivot| below threshold) at position "
                f"{int(info[0])} in a frontal matrix — re-factor with "
                "static_pivot=True (or MC64 scaling) to recover")
        # Quarantine: zeroed off-diagonal blocks and Schur complement
        # keep the rest of the traversal finite and warning-free.
        fac = FrontFactors(
            f11=f11.copy(), ipiv=ipiv, f12=np.zeros_like(F[:s, s:]),
            f21=np.zeros_like(F[s:, :s]), info=int(info[0]),
            n_replaced=int(ctrl.n_replaced[0]),
            min_pivot=float(ctrl.min_pivot[0]), growth=growth)
        return fac, np.zeros_like(F[s:, s:])
    f12 = F[:s, s:]
    f21 = F[s:, :s]
    if nf > s and s > 0:
        # apply the pivot-block row interchanges to F12
        for r in range(s):
            p = int(ipiv[r])
            if p != r:
                f12[[r, p], :] = f12[[p, r], :]
        f12[...] = sla.solve_triangular(f11, f12, lower=True,
                                        unit_diagonal=True,
                                        check_finite=False)
        f21[...] = sla.solve_triangular(f11.T, f21.T, lower=True,
                                        unit_diagonal=False,
                                        check_finite=False).T
        schur = F[s:, s:] - f21 @ f12
    else:
        # s == 0 (an empty separator from a disconnected bisection) must
        # pass the assembled child contributions through unchanged.
        schur = np.array(F[s:, s:], copy=True)
    return FrontFactors(f11=f11.copy(), ipiv=ipiv, f12=f12.copy(),
                        f21=f21.copy(), info=0,
                        n_replaced=int(ctrl.n_replaced[0]),
                        min_pivot=float(ctrl.min_pivot[0]),
                        growth=growth), schur


def multifrontal_factor_cpu(a_perm: sp.spmatrix,
                            symb: SymbolicFactorization, *,
                            pivot_tol: float = 0.0,
                            static_pivot: bool = False,
                            replace_scale: float | None = None,
                            breakdown: str = "raise"
                            ) -> MultifrontalFactors:
    """Factor the permuted sparse matrix front by front (postorder).

    Pivot breakdown handling mirrors the GPU path: every front records
    ``(info, n_replaced, min_pivot, growth)`` diagnostics, aggregated
    into the returned factors' :class:`FactorReport`.
    ``breakdown="raise"`` (default) raises a typed
    :class:`~repro.errors.FactorizationError` carrying the report when
    any front broke down un-recovered; ``breakdown="report"`` returns
    the (quarantined) factors with ``report.ok == False`` instead.
    """
    if breakdown not in ("raise", "report"):
        raise ValueError(f"unknown breakdown mode {breakdown!r}")
    a_perm = sp.csr_matrix(a_perm)
    schur: list[tuple[np.ndarray, np.ndarray] | None] = \
        [None] * len(symb.fronts)
    out = MultifrontalFactors(symb=symb)

    for fid, info in enumerate(symb.fronts):
        contribs = []
        for c in info.children:
            contribs.append(schur[c])
            schur[c] = None
        F = assemble_front(a_perm, info, [x for x in contribs if x])
        fac, S = factor_front_blocks(
            F, info.sep_size, pivot_tol=pivot_tol,
            static_pivot=static_pivot, replace_scale=replace_scale,
            raise_on_breakdown=False)
        out.fronts.append(fac)
        if info.parent >= 0:
            schur[fid] = (S, info.upd)
    out.report = FactorReport.from_factors(
        out, pivot_tol=pivot_tol, static_pivot=static_pivot,
        replace_scale=replace_scale)
    if breakdown == "raise" and not out.report.ok:
        raise FactorizationError(out.report.summary(), out.report)
    return out
