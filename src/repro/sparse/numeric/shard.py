"""Sharded multifrontal factorization across a multi-device node.

§III-A: "for the distributed memory parallel code, the assembly tree is
split in multiple subtrees, each of which is assigned to a single MPI
rank and corresponding GPU, while the top log P levels of the tree are
distributed ... and then processed using either ScaLAPACK (CPU-only) or
SLATE."

This module is the single-node, multi-GPU realisation of that design:

* :func:`partition_tree` splits the assembly tree into the top
  ``⌈log₂ P⌉`` levels plus rank-local subtrees, assigned to devices by
  longest-processing-time on their flop counts;
* each device factors its subtrees with the *same* level transactions
  as the single-device path (:func:`~.gpu_factor._run_level`: bounded
  retries, batch splitting, corruption quarantine, and the full pivot
  policy — ``pivot_tol`` / ``static_pivot`` / ``replace_scale``), on
  its own simulated timeline;
* subtree-root Schur contributions ship to the owner device over the
  node's modeled links (:meth:`~repro.device.node.Node.transfer`), and
  the top part is factored there with the batched kernels (the
  SLATE-like path) or costed with a ScaLAPACK-style CPU model.

Bitwise parity with single-device execution holds at every device
count, by construction rather than by luck: per-front numerics are
batch-composition independent (the engines' documented contract), the
extend-add consumes children in ``info.children`` order regardless of
which buffer they arrive through, and a host round trip of a Schur
block is byte-exact — exactly the invariants the out-of-core traversal
mode already relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ...analysis.flops import gemm_flops, getrf_flops, trsm_flops
from ...batched.engine import resolve_engine
from ...device.node import Node
from ...device.simulator import Device
from ...device.spec import XEON_6140_2S
from ...errors import FactorizationError
from ...recovery import RecoveryLog
from ..symbolic.analysis import SymbolicFactorization
from .factors import FrontFactors, MultifrontalFactors
from .gpu_factor import HYBRID_GEMM_CUTOFF, _chunk_levels, _run_level
from .report import FactorReport

__all__ = ["partition_tree", "RankAssignment",
           "multifrontal_factor_sharded", "ShardedFactorResult"]


# ----------------------------------------------------------------------
# tree partitioning (shared by the sharded and the simulated-MPI paths)
# ----------------------------------------------------------------------

@dataclass
class RankAssignment:
    """Which rank owns which front; -1 marks the distributed top part."""

    n_ranks: int
    rank_of_front: np.ndarray
    top_fronts: list[int]
    rank_fronts: list[list[int]]     # per rank, postorder
    rank_flops: list[float]

    @property
    def imbalance(self) -> float:
        """max/mean flop ratio across ranks (1.0 = perfect balance)."""
        nonzero = [f for f in self.rank_flops if f > 0]
        if not nonzero:
            return 1.0
        return max(nonzero) / (sum(nonzero) / len(nonzero))


def _front_flops(symb: SymbolicFactorization, fid: int) -> float:
    f = symb.fronts[fid]
    s, u = f.sep_size, f.upd_size
    return getrf_flops(s, s) + 2 * trsm_flops(s, u) + gemm_flops(u, u, s)


def partition_tree(symb: SymbolicFactorization,
                   n_ranks: int) -> RankAssignment:
    """Split the assembly tree: top ⌈log₂P⌉ levels + LPT subtrees."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    nf = len(symb.fronts)
    rank_of = np.full(nf, -1, dtype=np.int64)
    if n_ranks == 1:
        return RankAssignment(
            n_ranks=1, rank_of_front=np.zeros(nf, dtype=np.int64),
            top_fronts=[],
            rank_fronts=[list(range(nf))],
            rank_flops=[sum(_front_flops(symb, f) for f in range(nf))])

    top_levels = max(1, math.ceil(math.log2(n_ranks)))
    top = [fid for fid, f in enumerate(symb.fronts) if f.level < top_levels]
    top_set = set(top)

    # subtree roots: fronts below the top whose parent is in the top (or
    # absent) — each subtree goes to one rank as a unit.
    subtree_flops: dict[int, float] = {}
    subtree_fronts: dict[int, list[int]] = {}

    def collect(fid: int) -> tuple[float, list[int]]:
        f = symb.fronts[fid]
        fl = _front_flops(symb, fid)
        fronts = []
        for c in f.children:
            cf, cl = collect(c)
            fl += cf
            fronts.extend(cl)
        fronts.append(fid)
        return fl, fronts

    roots = [fid for fid, f in enumerate(symb.fronts)
             if fid not in top_set and
             (f.parent < 0 or f.parent in top_set)]
    for r in roots:
        subtree_flops[r], subtree_fronts[r] = collect(r)

    # LPT assignment of subtrees to ranks
    loads = [0.0] * n_ranks
    rank_fronts: list[list[int]] = [[] for _ in range(n_ranks)]
    for r in sorted(roots, key=lambda x: -subtree_flops[x]):
        dest = int(np.argmin(loads))
        loads[dest] += subtree_flops[r]
        rank_fronts[dest].extend(sorted(subtree_fronts[r]))
        for fid in subtree_fronts[r]:
            rank_of[fid] = dest
    for rf in rank_fronts:
        rf.sort()

    return RankAssignment(n_ranks=n_ranks, rank_of_front=rank_of,
                          top_fronts=sorted(top), rank_fronts=rank_fronts,
                          rank_flops=loads)


# ----------------------------------------------------------------------
# sharded factorization
# ----------------------------------------------------------------------

@dataclass
class ShardedFactorResult:
    """Factors plus the simulated multi-device execution profile.

    ``elapsed`` is the true node makespan (the latest member clock once
    every device is idle — subtree phases overlap, so this is *not* the
    sum of the parts).  ``rank_link_stats`` records, per device, the
    ``(nbytes, n_messages)`` of boundary Schur contributions it produced
    — including the owner's own, which never physically cross a link —
    while ``link_bytes`` counts only bytes that actually travelled.
    """

    factors: MultifrontalFactors
    assignment: RankAssignment
    elapsed: float
    per_device_seconds: list[float] = field(default_factory=list)
    gather_seconds: float = 0.0
    top_seconds: float = 0.0
    link_bytes: int = 0
    rank_link_stats: list[tuple[int, int]] = field(default_factory=list)
    report: "FactorReport | None" = None


def multifrontal_factor_sharded(
        node: Node, a_perm: sp.spmatrix, symb: SymbolicFactorization, *,
        strategy: str = "batched", gemm_mode: str = "hybrid",
        hybrid_cutoff: int = HYBRID_GEMM_CUTOFF,
        laswp_variant: str = "rehearsed", nb: int = 32,
        pivot_tol: float = 0.0, static_pivot: bool = False,
        replace_scale: float | None = None, breakdown: str = "raise",
        engine="bucketed", top_mode: str = "slate",
        top_device: int = 0) -> ShardedFactorResult:
    """Factor the permuted sparse matrix across the node's devices.

    Subtrees run on concurrent per-device timelines through the same
    level transactions as :func:`multifrontal_factor_gpu` — the full
    pivot policy (``pivot_tol``/``static_pivot``/``replace_scale``),
    batch engine selection and the retry/level-split/quarantine ladder
    all apply per device.  Boundary Schur contributions are shipped to
    ``top_device`` over the node's modeled links; the top part is
    factored there (``top_mode="slate"``, batched kernels) or costed
    with the ScaLAPACK-style CPU model (``"scalapack"`` — the numerics
    still run, on an untimed scratch device, so the factors are always
    complete).

    The aggregated :class:`FactorReport` (with every device's recovery
    slice merged in) is attached to ``result.report`` and
    ``factors.report``; ``breakdown="raise"`` (default) raises a typed
    :class:`FactorizationError` on unrecovered pivot breakdown,
    ``"report"`` returns the quarantined factors with ``report.ok ==
    False``.  Factors are bitwise identical to the single-device path
    at every device count.
    """
    if strategy not in ("batched", "looped", "strumpack"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if gemm_mode not in ("irr", "vendor", "hybrid"):
        raise ValueError(f"unknown gemm_mode {gemm_mode!r}")
    if breakdown not in ("raise", "report"):
        raise ValueError(f"unknown breakdown mode {breakdown!r}")
    if top_mode not in ("slate", "scalapack"):
        raise ValueError(f"unknown top_mode {top_mode!r}")
    if not 0 <= top_device < len(node):
        raise ValueError(f"top_device {top_device} out of range for a "
                         f"{len(node)}-device node")
    a_perm = sp.csr_matrix(a_perm)
    if a_perm.shape[0] != symb.n:
        raise ValueError("matrix size does not match the symbolic analysis")

    assign = partition_tree(symb, len(node))
    engine = resolve_engine(engine)
    marks = [dev.recovery_log.mark() for dev in node]
    link_bytes0 = node.p2p_bytes + node.staged_bytes
    a_dev_bytes = a_perm.data.nbytes + a_perm.indices.nbytes + \
        a_perm.indptr.nbytes

    host_factors: dict[int, FrontFactors] = {}
    host_schur: dict[int, np.ndarray] = {}

    def run_fronts(device: Device, fids: list[int]) -> float:
        """Factor one device's fronts; stream results to the host store.

        Identical level transactions to the single-device traversal
        (same engine, same pivot policy, same recovery ladder); the
        download/harvest happens outside the timed region, as the
        single-device path does.
        """
        if not fids:
            return 0.0
        buffers: dict = {}
        pivots_of: dict = {}
        diag_of: dict[int, tuple[int, int, float, float]] = {}
        fid_set = set(fids)
        try:
            with device.timed_region() as region:
                for level_fids in _chunk_levels(symb, fids):
                    _run_level(device, a_perm, symb, level_fids, buffers,
                               pivots_of, strategy, gemm_mode,
                               hybrid_cutoff, laswp_variant, nb,
                               host_schur=host_schur, engine=engine,
                               diag_of=diag_of, pivot_tol=pivot_tol,
                               static_pivot=static_pivot,
                               replace_scale=replace_scale)
            for fid in fids:
                info = symb.fronts[fid]
                s = info.sep_size
                data = buffers[fid].to_host()
                d_info, d_rep, d_minp, d_growth = diag_of.get(
                    fid, (0, 0, np.inf, 1.0))
                host_factors[fid] = FrontFactors(
                    f11=data[:s, :s].copy(), ipiv=pivots_of[fid],
                    f12=data[:s, s:].copy(), f21=data[s:, :s].copy(),
                    info=d_info, n_replaced=d_rep, min_pivot=d_minp,
                    growth=d_growth)
                if info.parent >= 0 and info.parent not in fid_set \
                        and info.upd_size:
                    host_schur[fid] = data[s:, s:].copy()
                buffers[fid].free()
                del buffers[fid]
        finally:
            for arr in buffers.values():
                arr.free()
        return region["elapsed"]

    # Each participating device holds its own copy of A for assembly
    # (uploaded outside the timed regions, like the single-device path).
    active = [d for d in range(len(node)) if assign.rank_fronts[d]]
    if assign.top_fronts and top_mode == "slate" \
            and top_device not in active:
        active.append(top_device)
    claimed: list[int] = []
    try:
        for d in active:
            node[d]._claim(a_dev_bytes, site="shard:a_csr")
            claimed.append(d)
            node[d]._account_transfer(a_dev_bytes)

        # --- phase 1: rank-local subtrees (concurrent timelines) ---------
        per_device = [run_fronts(node[d], assign.rank_fronts[d])
                      for d in range(len(node))]

        # --- phase 2: gather boundary Schur contributions to the owner ---
        link_stats = [[0, 0] for _ in range(len(node))]
        gather_seconds = 0.0
        if assign.top_fronts:
            owner = node[top_device]
            t0 = owner.host_time
            for d in range(len(node)):
                for f in assign.rank_fronts[d]:
                    if f in host_schur:
                        nbytes = host_schur[f].nbytes
                        link_stats[d][0] += nbytes
                        link_stats[d][1] += 1
                        node.transfer(d, top_device, nbytes)
            gather_seconds = owner.host_time - t0

        # --- phase 3: the top part on the owner device -------------------
        top_seconds = 0.0
        if assign.top_fronts:
            if top_mode == "slate":
                top_seconds = run_fronts(node[top_device],
                                         assign.top_fronts)
            else:
                # ScaLAPACK model: CPU-only 2D block-cyclic over all
                # devices' host processes; the numerics run on an
                # untimed scratch device so the factors stay complete.
                cpu = XEON_6140_2S()
                flops = sum(_front_flops(symb, f)
                            for f in assign.top_fronts)
                rate = len(node) * 16 * cpu.freq_hz * \
                    cpu.flops_per_cycle_per_core
                eff = cpu.getrf_efficiency(
                    max(symb.fronts[f].order for f in assign.top_fronts))
                top_seconds = flops / (rate * max(eff, 1e-3))
                run_fronts(Device(node.spec), assign.top_fronts)
                node[top_device].host_compute(top_seconds)
    finally:
        for d in claimed:
            node[d]._release(a_dev_bytes)

    out = MultifrontalFactors(symb=symb)
    out.fronts = [host_factors[fid] for fid in range(len(symb.fronts))]
    out.report = FactorReport.from_factors(
        out, pivot_tol=pivot_tol, static_pivot=static_pivot,
        replace_scale=replace_scale)
    events: list = []
    for dev, mark in zip(node, marks):
        events.extend(dev.recovery_log.since(mark).events)
    out.report.recovery = RecoveryLog(events)
    if breakdown == "raise" and not out.report.ok:
        raise FactorizationError(out.report.summary(), out.report)

    return ShardedFactorResult(
        factors=out, assignment=assign, elapsed=node.synchronize(),
        per_device_seconds=per_device, gather_seconds=gather_seconds,
        top_seconds=top_seconds,
        link_bytes=(node.p2p_bytes + node.staged_bytes) - link_bytes0,
        rank_link_stats=[(nb_, cnt) for nb_, cnt in link_stats],
        report=out.report)
