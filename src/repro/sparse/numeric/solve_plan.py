"""Solve plan + device-resident factor cache (fast repeated solves).

A production sparse direct solver factors once and solves *many* times
(§V-B amortizes the factorization over repeated right-hand sides,
Fig 12).  The seed solve path re-did all per-solve setup on every call:
it re-uploaded every factor level, re-applied pivots row-by-row in
Python, and scatter-updated front-by-front with ``np.subtract.at``.
This module precomputes everything that depends only on the factors:

* :class:`SolvePlan` — built once per factorization.  Per level it
  stores the *rehearsed* pivot permutation (the row-by-row swap loop
  becomes one fancy-index gather, reusing the rehearsal machinery of
  :class:`~repro.batched.engine.BatchEngine`), the concatenated
  update-index arrays with segment boundaries, the conflict-free scatter
  *rounds* (see below) and the shape buckets for the ``f21 @ y`` /
  ``f12 @ x`` update GEMMs.

* :class:`DeviceFactorCache` — keeps the factor blocks device-resident
  across solves: per level, the ``f11`` pivot blocks as an
  :class:`~repro.batched.interface.IrrBatch` (for irrTRSM) and the
  ``f21``/``f12`` blocks packed into contiguous per-bucket stacks, each
  uploaded in **one** H2D transfer.  A ``memory_budget`` keeps only the
  levels that fit resident; the rest fall back to the seed's streaming
  uploads (upload, use, free) — mirroring the out-of-core factorization
  mode.

Bitwise-identity contract
-------------------------
The planned path must produce solutions bitwise identical to the naive
per-front reference in :mod:`repro.sparse.numeric.gpu_solve`:

* the rehearsed permutation replays the exact swap sequence, so the
  single gather equals the row-by-row swaps;
* stacked 3-D ``np.matmul`` equals the per-matrix 2-D product (the
  engine's contract); the inner-product shape (``m = nrhs = 1``) stays
  per-matrix;
* the forward scatter's ``np.subtract.at`` is order-sensitive when two
  same-level fronts update the same ancestor row.  The plan partitions
  the concatenated update positions into *rounds*: round ``r`` holds the
  ``r``-th occurrence of every row, so within a round the rows are
  unique (plain vectorized subtract) and across rounds each row receives
  its contributions in front order — the exact sequence of the
  per-front ``np.subtract.at`` loop.  Almost all levels need one round.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ...batched.engine import BatchEngine
from ...batched.interface import IrrBatch
from ...device.memory import DeviceOutOfMemory, pack_to_device, \
    validate_memory_budget
from ...device.simulator import Device
from .factors import MultifrontalFactors
from .report import check_factors_ok

__all__ = ["SolvePlan", "DeviceFactorCache", "LevelSolvePlan",
           "SolveBucket", "LevelFactorBlocks"]


@dataclass
class SolveBucket:
    """One (upd_size, sep_size) shape class of a level's active fronts.

    All member fronts share the update-GEMM shapes, so their ``f21`` /
    ``f12`` blocks stack into contiguous ``(bs, u, s)`` / ``(bs, s, u)``
    arrays and their gathers/scatters become single fancy-index
    operations through the precomputed global row matrices.
    """

    u: int
    s: int
    fids: np.ndarray          #: member front ids (front order)
    sep_start: np.ndarray     #: per member, first global sep row
    seg_start: np.ndarray     #: per member, start into the level's
    #: concatenated update positions
    sep_mat: np.ndarray       #: (bs, s) global sep rows
    sep_flat: np.ndarray      #: (bs*s,) flattened ``sep_mat``
    upd_mat: np.ndarray       #: (bs, u) global update rows
    out_pos: np.ndarray       #: (bs*u,) positions into the delta buffer

    @property
    def batch_size(self) -> int:
        return len(self.fids)


@dataclass
class LevelSolvePlan:
    """Precomputed execution structure of one assembly-tree level."""

    fids: list[int]           #: fronts with ``sep_size > 0``, front order
    sep_m: np.ndarray         #: per-front separator sizes (int64)
    sep_starts: np.ndarray    #: per-front first global sep row
    max_sep: int
    # rehearsed pivot application: one gather replaces the swap loops
    piv_dst: np.ndarray       #: global rows that move (destinations)
    piv_src: np.ndarray       #: their source rows after all swaps
    swaps_total: int          #: off-diagonal pivot count (cost parity)
    # update structure (fronts with ``upd_size > 0`` only)
    upd_rows: np.ndarray      #: concatenated global update rows
    rounds: list[tuple[np.ndarray, np.ndarray]]  #: (rows, positions)
    buckets: list[SolveBucket] = field(default_factory=list)
    # order-independent cost sums matching the naive loop's accumulators
    sum_us: int = 0           #: Σ upd·sep over active fronts
    sum_u: int = 0            #: Σ upd over active fronts
    sum_s_active: int = 0     #: Σ sep over active fronts

    @property
    def nfronts(self) -> int:
        return len(self.fids)


def _build_rounds(upd_rows: np.ndarray
                  ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Partition concatenated update positions into conflict-free rounds.

    Position ``i`` lands in round ``occ(i)`` = how many earlier positions
    target the same global row.  A stable sort keeps equal rows in front
    order, so round ``r`` holds every row's ``r``-th contribution and the
    per-row application order matches the sequential reference exactly.
    """
    n = len(upd_rows)
    if n == 0:
        return []
    order = np.argsort(upd_rows, kind="stable")
    sorted_rows = upd_rows[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_rows[1:] != sorted_rows[:-1]
    idx = np.arange(n, dtype=np.int64)
    group_start = idx[new_group][np.cumsum(new_group) - 1]
    occ = np.empty(n, dtype=np.int64)
    occ[order] = idx - group_start
    n_rounds = int(occ.max()) + 1
    return [(upd_rows[occ == r], np.nonzero(occ == r)[0])
            for r in range(n_rounds)]


class SolvePlan:
    """Per-level execution plan built once from the numeric factors.

    Owns a :class:`~repro.batched.engine.BatchEngine` so the TRSM/DCWI
    plans cached during the first solve are reused by every later solve
    (including the refinement passes of one ``SparseLU.solve`` call).
    """

    def __init__(self, factors: MultifrontalFactors, *,
                 engine: BatchEngine | None = None):
        check_factors_ok(factors, "build a solve plan")
        self.factors = factors
        self.symb = factors.symb
        self.engine = engine if isinstance(engine, BatchEngine) \
            else BatchEngine()
        self.dtype = (factors.fronts[0].f11.dtype if factors.fronts
                      else np.dtype(np.float64))
        self.levels: list[LevelSolvePlan] = []
        for fids in self.symb.levels():
            fids = [f for f in fids if self.symb.fronts[f].sep_size > 0]
            if fids:
                self.levels.append(self._build_level(fids))

    # ------------------------------------------------------------------
    def _build_level(self, fids: list[int]) -> LevelSolvePlan:
        symb, factors = self.symb, self.factors
        infos = [symb.fronts[f] for f in fids]
        sep_m = np.array([i.sep_size for i in infos], dtype=np.int64)
        sep_starts = np.array([i.sep_begin for i in infos], dtype=np.int64)

        # Rehearse every front's swap sequence into one permutation.
        perm, swaps = BatchEngine._rehearse_permutation(
            [factors.fronts[f].ipiv for f in fids], int(sep_m.max()))
        dst_parts, src_parts = [], []
        for i, info in enumerate(infos):
            s = info.sep_size
            moved = np.nonzero(perm[i, :s] != np.arange(s))[0]
            if len(moved):
                dst_parts.append(info.sep_begin + moved)
                src_parts.append(info.sep_begin + perm[i, moved])
        cat = lambda parts: (np.concatenate(parts) if parts  # noqa: E731
                             else np.empty(0, dtype=np.int64))

        # Active fronts (upd_size > 0): concatenated update rows, the
        # scatter rounds, and the (u, s) shape buckets.
        act = [(i, info) for i, info in enumerate(infos) if info.upd_size]
        upd_rows = cat([info.upd for _i, info in act])
        seg_starts = np.zeros(len(act), dtype=np.int64)
        if act:
            sizes = np.array([info.upd_size for _i, info in act],
                             dtype=np.int64)
            seg_starts[1:] = np.cumsum(sizes)[:-1]

        lp = LevelSolvePlan(
            fids=fids, sep_m=sep_m, sep_starts=sep_starts,
            max_sep=int(sep_m.max()),
            piv_dst=cat(dst_parts), piv_src=cat(src_parts),
            swaps_total=int(swaps.sum()),
            upd_rows=upd_rows, rounds=_build_rounds(upd_rows))
        if act:
            shapes = np.array([[info.upd_size, info.sep_size]
                               for _i, info in act], dtype=np.int64)
            uniq, inv = np.unique(shapes, axis=0, return_inverse=True)
            inv = inv.ravel()
            for g in range(len(uniq)):
                members = np.nonzero(inv == g)[0]
                u, s = int(uniq[g, 0]), int(uniq[g, 1])
                b_sep = sep_starts[[act[m][0] for m in members]]
                b_seg = seg_starts[members]
                sep_mat = b_sep[:, None] + np.arange(s, dtype=np.int64)
                upd_pos = b_seg[:, None] + np.arange(u, dtype=np.int64)
                lp.buckets.append(SolveBucket(
                    u=u, s=s,
                    fids=np.array([fids[act[m][0]] for m in members],
                                  dtype=np.int64),
                    sep_start=b_sep, seg_start=b_seg,
                    sep_mat=sep_mat, sep_flat=sep_mat.reshape(-1),
                    upd_mat=upd_rows[upd_pos],
                    out_pos=upd_pos.reshape(-1)))
            lp.sum_us = int(np.sum(shapes[:, 0] * shapes[:, 1]))
            lp.sum_u = int(np.sum(shapes[:, 0]))
            lp.sum_s_active = int(np.sum(shapes[:, 1]))
        return lp

    # ------------------------------------------------------------------
    def level_nbytes(self, lp: LevelSolvePlan) -> int:
        """Device bytes a resident level holds (f11 + stacked f21/f12)."""
        itemsize = np.dtype(self.dtype).itemsize
        return int(itemsize * (np.sum(lp.sep_m * lp.sep_m)
                               + 2 * lp.sum_us))

    def total_nbytes(self) -> int:
        return sum(self.level_nbytes(lp) for lp in self.levels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SolvePlan(levels={len(self.levels)}, "
                f"bytes={self.total_nbytes()})")


class LevelFactorBlocks:
    """One level's factor blocks on the device.

    ``f11`` is an :class:`IrrBatch` (consumed by irrTRSM); ``f21_stacks``
    / ``f12_stacks`` are per-bucket contiguous 3-D stacks, parallel to
    ``LevelSolvePlan.buckets``.  Parts are uploaded lazily: a streamed
    forward pass needs only ``f11`` + ``f21``.
    """

    def __init__(self) -> None:
        self.f11: IrrBatch | None = None
        self.f21_stacks: list | None = None
        self.f12_stacks: list | None = None

    def free(self) -> None:
        """Release the level's device memory (idempotent)."""
        if self.f11 is not None:
            self.f11.free()
            self.f11 = None
        for stacks in (self.f21_stacks, self.f12_stacks):
            if stacks is not None:
                for arr in stacks:
                    arr.free()
        self.f21_stacks = None
        self.f12_stacks = None

    def __enter__(self) -> "LevelFactorBlocks":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()


class DeviceFactorCache:
    """Device-resident factor storage shared across repeated solves.

    ``memory_budget=None`` keeps every level resident (the first solve
    uploads each level once; later solves — including iterative
    refinement — perform **zero** factor uploads).  A positive integer
    budget keeps only the levels that fit (chosen smallest-first, which
    maximizes the resident level count and hence the per-solve transfer
    round-trips saved); other budgets raise :class:`ValueError`.
    Non-resident levels are streamed per use exactly like the seed path
    (the internal ``_stream_all`` flag forces that mode for one-shot
    solves).

    Under memory pressure the cache *spills*: when an upload hits a
    :class:`~repro.device.memory.DeviceOutOfMemory`, the least recently
    used uploaded level is evicted (its host factors stay authoritative,
    so nothing is lost) and the upload retried; each eviction is
    recorded as a ``cache-evict`` in ``device.recovery_log``.  Evicted
    levels drop back to streaming for later acquires.

    Ownership: the cache is a *shared* resource — one
    :class:`~repro.sparse.solver.SparseLU` handle may be solved from
    several threads (a serving layer multiplexes many sessions onto one
    device).  Every mutating entry point (:meth:`acquire`,
    :meth:`evict_lru`, :meth:`free`) takes the cache's re-entrant lock,
    and a whole solve brackets itself with :meth:`exclusive` so a
    concurrent solve on the same handle cannot interleave its uploads
    with this solve's evictions (the interleaving that used to corrupt
    residency bookkeeping).  The lock serializes solves per handle;
    distinct handles (distinct caches) proceed independently.
    """

    def __init__(self, device: Device, factors: MultifrontalFactors,
                 plan: SolvePlan, *, memory_budget: int | None = None,
                 _stream_all: bool = False):
        check_factors_ok(factors, "cache factors on the device")
        self.device = device
        self.factors = factors
        self.plan = plan
        self.memory_budget = validate_memory_budget(memory_budget)
        self._stream_all = bool(_stream_all)
        self.uploads = 0          #: level-part upload events
        self.hits = 0             #: resident re-uses
        self.evictions = 0        #: OOM-pressure spills
        self._resident: dict[int, LevelFactorBlocks] = {}
        self._tick = 0
        self._last_use: dict[int, int] = {}
        self._lock = threading.RLock()
        self._resident_set = self._choose_resident()

    @contextmanager
    def exclusive(self):
        """Hold the cache for one logical operation (e.g. a full solve).

        Re-entrant: the per-call locking inside :meth:`acquire` /
        :meth:`evict_lru` / :meth:`free` nests freely under it.
        """
        with self._lock:
            yield self

    # ------------------------------------------------------------------
    def _choose_resident(self) -> set[int]:
        if self._stream_all:
            return set()
        sizes = [(self.plan.level_nbytes(lp), li)
                 for li, lp in enumerate(self.plan.levels)]
        if self.memory_budget is None:
            return {li for _nb, li in sizes}
        chosen: set[int] = set()
        used = 0
        for nb, li in sorted(sizes):
            if used + nb <= self.memory_budget:
                chosen.add(li)
                used += nb
        return chosen

    def evict_lru(self, *, exclude: int | None = None) -> int | None:
        """Spill the least recently used uploaded level; return its index.

        The level's device blocks are freed (the host copy is
        authoritative) and the level drops out of the resident set, so
        later acquires stream it.  Returns ``None`` when nothing is
        uploaded to evict.
        """
        with self._lock:
            candidates = [li for li in self._resident if li != exclude]
            if not candidates:
                return None
            li = min(candidates, key=lambda li: self._last_use.get(li, -1))
            self._resident.pop(li).free()
            self._resident_set.discard(li)
            self._last_use.pop(li, None)
            self.evictions += 1
        self.device.recovery_log.record(
            "cache-evict", site="DeviceFactorCache",
            detail=f"level {li} "
                   f"({self.plan.level_nbytes(self.plan.levels[li])} bytes)")
        return li

    @property
    def resident_levels(self) -> set[int]:
        return set(self._resident_set)

    @property
    def resident_nbytes(self) -> int:
        return sum(self.plan.level_nbytes(self.plan.levels[li])
                   for li in self._resident_set)

    # ------------------------------------------------------------------
    def _upload_f11(self, lp: LevelSolvePlan) -> IrrBatch:
        arrays = []
        try:
            for f in lp.fids:
                arrays.append(
                    self.device.from_host(self.factors.fronts[f].f11))
        except BaseException:
            for a in arrays:
                a.free()
            raise
        return IrrBatch(self.device, arrays, lp.sep_m, lp.sep_m)

    def _upload_stacks(self, lp: LevelSolvePlan, which: str) -> list:
        """Pack one bucket's f21/f12 blocks and upload in one transfer."""
        stacks = []
        try:
            for b in lp.buckets:
                blocks = [getattr(self.factors.fronts[f], which)
                          for f in b.fids]
                stacks.append(pack_to_device(self.device, blocks,
                                             dtype=self.plan.dtype))
        except BaseException:
            for s in stacks:
                s.free()
            raise
        return stacks

    def _acquire_once(self, li: int,
                      part: str) -> tuple[LevelFactorBlocks, bool]:
        lp = self.plan.levels[li]
        if li in self._resident_set:
            blocks = self._resident.get(li)
            if blocks is None:
                blocks = LevelFactorBlocks()
                try:
                    blocks.f11 = self._upload_f11(lp)
                    blocks.f21_stacks = self._upload_stacks(lp, "f21")
                    blocks.f12_stacks = self._upload_stacks(lp, "f12")
                except BaseException:
                    blocks.free()
                    raise
                self._resident[li] = blocks
                self.uploads += 1
            else:
                self.hits += 1
            self._tick += 1
            self._last_use[li] = self._tick
            return blocks, False
        blocks = LevelFactorBlocks()
        try:
            blocks.f11 = self._upload_f11(lp)
            if part == "fwd":
                blocks.f21_stacks = self._upload_stacks(lp, "f21")
            else:
                blocks.f12_stacks = self._upload_stacks(lp, "f12")
        except BaseException:
            blocks.free()
            raise
        self.uploads += 1
        return blocks, True

    def acquire(self, li: int, part: str) -> tuple[LevelFactorBlocks, bool]:
        """Get level ``li``'s blocks for one sweep direction.

        ``part`` is ``"fwd"`` (needs f11 + f21) or ``"bwd"`` (f11 + f12).
        Returns ``(blocks, owned)``; an *owned* result is streamed and
        must be freed by the caller after use (it supports the context
        manager protocol for that).  An upload that hits device OOM
        spills resident levels LRU-first and retries; the OOM propagates
        only once nothing is left to evict.  A failed acquire never
        leaves a partial upload behind.
        """
        if part not in ("fwd", "bwd"):
            raise ValueError(f"invalid part {part!r}")
        with self._lock:
            while True:
                try:
                    return self._acquire_once(li, part)
                except DeviceOutOfMemory:
                    if self.evict_lru(exclude=li) is None:
                        raise

    def free(self) -> None:
        """Release all resident device memory (the cache stays usable)."""
        with self._lock:
            for blocks in self._resident.values():
                blocks.free()
            self._resident.clear()
            self._last_use.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DeviceFactorCache(levels={len(self.plan.levels)}, "
                f"resident={len(self._resident_set)}, "
                f"uploads={self.uploads}, hits={self.hits}, "
                f"evictions={self.evictions})")
