"""Forward/backward substitution through the assembly tree (phase 3).

Solves ``A_perm · x = b`` from the multifrontal factors: a postorder
forward sweep through the L factors (applying each front's restricted
pivoting), then a reverse sweep through the U factors.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from .factors import MultifrontalFactors
from .report import check_factors_ok

__all__ = ["multifrontal_solve"]


def multifrontal_solve(factors: MultifrontalFactors,
                       b: np.ndarray) -> np.ndarray:
    """Solve the permuted system for one or more right-hand sides.

    Factors whose :class:`FactorReport` records an unrecovered pivot
    breakdown are refused with a
    :class:`~repro.errors.FactorizationError`.
    """
    check_factors_ok(factors, "substitute through the host factors")
    symb = factors.symb
    dtype = np.result_type(np.asarray(b).dtype,
                           factors.fronts[0].f11.dtype
                           if factors.fronts else np.float64)
    x = np.array(b, dtype=dtype, copy=True)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != symb.n:
        raise ValueError(
            f"right-hand side has {x.shape[0]} rows, expected {symb.n}")

    # Forward: y = L^{-1} (block-P) b, postorder.
    for fid, info in enumerate(symb.fronts):
        s = info.sep_size
        if s == 0:
            continue
        fac = factors.fronts[fid]
        sl = slice(info.sep_begin, info.sep_end)
        bs = x[sl]
        for r in range(s):
            p = int(fac.ipiv[r])
            if p != r:
                bs[[r, p], :] = bs[[p, r], :]
        bs[...] = sla.solve_triangular(fac.f11, bs, lower=True,
                                       unit_diagonal=True,
                                       check_finite=False)
        if info.upd_size:
            x[info.upd, :] -= fac.f21 @ bs

    # Backward: x = U^{-1} y, reverse postorder.
    for fid in range(len(symb.fronts) - 1, -1, -1):
        info = symb.fronts[fid]
        s = info.sep_size
        if s == 0:
            continue
        fac = factors.fronts[fid]
        sl = slice(info.sep_begin, info.sep_end)
        rhs = x[sl]
        if info.upd_size:
            rhs = rhs - fac.f12 @ x[info.upd, :]
        x[sl] = sla.solve_triangular(fac.f11, rhs, lower=False,
                                     check_finite=False)

    return x[:, 0] if squeeze else x
