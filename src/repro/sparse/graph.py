"""Adjacency-graph utilities on CSR sparsity patterns.

The multifrontal solver works on the *symmetrized* pattern of the input
matrix (§III-A: "using a symmetrized sparsity pattern"); this module holds
the small pattern-level operations the ordering and symbolic phases need.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["symmetrize_pattern", "adjacency_lists", "connected_components",
           "bfs_levels", "pseudo_peripheral_vertex", "subgraph"]


def symmetrize_pattern(a: sp.spmatrix) -> sp.csr_matrix:
    """Pattern of ``A + Aᵀ`` with an explicit zero-free structure and no
    diagonal (a plain adjacency graph)."""
    a = sp.csr_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    pattern = (a != 0).astype(np.int8)
    sym = (pattern + pattern.T).tocsr()
    sym.setdiag(0)
    sym.eliminate_zeros()
    sym.sort_indices()
    return sym


def adjacency_lists(g: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Return (indptr, indices) of an adjacency CSR (no-copy views)."""
    return g.indptr, g.indices


def bfs_levels(g: sp.csr_matrix, start: int,
               mask: np.ndarray | None = None) -> np.ndarray:
    """BFS level of every vertex from ``start`` (-1 = unreachable).

    ``mask`` restricts the traversal to vertices where it is True.
    """
    n = g.shape[0]
    indptr, indices = g.indptr, g.indices
    level = np.full(n, -1, dtype=np.int64)
    if mask is not None and not mask[start]:
        raise ValueError("start vertex is masked out")
    level[start] = 0
    frontier = [start]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for v in frontier:
            for w in indices[indptr[v]:indptr[v + 1]]:
                if level[w] == -1 and (mask is None or mask[w]):
                    level[w] = d
                    nxt.append(int(w))
        frontier = nxt
    return level


def pseudo_peripheral_vertex(g: sp.csr_matrix,
                             vertices: np.ndarray) -> int:
    """A vertex of (nearly) maximal eccentricity within ``vertices``.

    The George–Liu doubling heuristic: BFS from an arbitrary vertex, jump
    to the farthest one, repeat until the eccentricity stops growing.
    """
    if len(vertices) == 0:
        raise ValueError("empty vertex set")
    mask = np.zeros(g.shape[0], dtype=bool)
    mask[vertices] = True
    v = int(vertices[0])
    ecc = -1
    for _ in range(8):  # converges in 2-3 iterations in practice
        level = bfs_levels(g, v, mask)
        reach = level[vertices]
        new_ecc = int(reach.max())
        if new_ecc <= ecc:
            break
        ecc = new_ecc
        far = vertices[reach == new_ecc]
        v = int(far[0])
    return v


def connected_components(g: sp.csr_matrix,
                         vertices: np.ndarray) -> list[np.ndarray]:
    """Connected components of the induced subgraph on ``vertices``."""
    mask = np.zeros(g.shape[0], dtype=bool)
    mask[vertices] = True
    seen = np.zeros(g.shape[0], dtype=bool)
    comps = []
    indptr, indices = g.indptr, g.indices
    for v0 in vertices:
        if seen[v0]:
            continue
        comp = []
        stack = [int(v0)]
        seen[v0] = True
        while stack:
            v = stack.pop()
            comp.append(v)
            for w in indices[indptr[v]:indptr[v + 1]]:
                if mask[w] and not seen[w]:
                    seen[w] = True
                    stack.append(int(w))
        comps.append(np.array(sorted(comp), dtype=np.int64))
    return comps


def subgraph(g: sp.csr_matrix, vertices: np.ndarray
             ) -> tuple[sp.csr_matrix, np.ndarray]:
    """Induced subgraph; returns (graph, original-vertex-of-local-index)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    sub = g[vertices][:, vertices].tocsr()
    sub.sort_indices()
    return sub, vertices
