"""Multifrontal sparse direct LU solver (the application substrate).

Public surface: :class:`SparseLU` for the full analyze/factor/solve
pipeline, plus the phase-level building blocks (orderings, symbolic
analysis, numeric kernels, comparator backends) for experiments.
"""

from ..errors import FactorizationError
from .baselines import naive_loop_factor, strumpack_like_factor, \
    superlu_like_factor
from .numeric.cpu_factor import multifrontal_factor_cpu
from .numeric.report import FactorReport, check_factors_ok
from .numeric.gpu_factor import GpuFactorResult, HYBRID_GEMM_CUTOFF, \
    STRUMPACK_BATCH_LIMIT, multifrontal_factor_gpu, plan_traversals
from .numeric.gpu_solve import GpuSolveResult, multifrontal_solve_gpu
from .numeric.solve_plan import DeviceFactorCache, SolvePlan
from .distributed import DistributedFactorResult, \
    multifrontal_factor_distributed
from .numeric.shard import RankAssignment, ShardedFactorResult, \
    multifrontal_factor_sharded, partition_tree
from .numeric.triangular import multifrontal_solve
from .ordering.mc64 import Mc64Result, StructurallySingularError, mc64
from .ordering.nested_dissection import NestedDissection, \
    SeparatorTreeNode, nested_dissection
from .cholesky import CholeskyFactors, SparseCholesky
from .solver import SolveInfo, SparseLU
from .symbolic.analysis import FrontInfo, SymbolicFactorization, \
    symbolic_analysis

__all__ = [
    "SparseLU", "SolveInfo",
    "FactorizationError", "FactorReport", "check_factors_ok",
    "nested_dissection", "NestedDissection", "SeparatorTreeNode",
    "mc64", "Mc64Result", "StructurallySingularError",
    "symbolic_analysis", "SymbolicFactorization", "FrontInfo",
    "multifrontal_factor_cpu", "multifrontal_factor_gpu",
    "multifrontal_solve", "GpuFactorResult",
    "naive_loop_factor", "strumpack_like_factor", "superlu_like_factor",
    "HYBRID_GEMM_CUTOFF", "STRUMPACK_BATCH_LIMIT",
    "plan_traversals", "multifrontal_solve_gpu", "GpuSolveResult",
    "SolvePlan", "DeviceFactorCache",
    "multifrontal_factor_distributed", "DistributedFactorResult",
    "multifrontal_factor_sharded", "ShardedFactorResult",
    "partition_tree", "RankAssignment",
    "SparseCholesky", "CholeskyFactors",
]
