"""SparseLU — the top-level sparse direct solver (§III-A).

Wraps the three phases the paper describes:

1. *Reordering and symbolic analysis* — optional MC64 static pivoting
   (row permutation + scalings), nested-dissection fill reduction, and
   the frontal symbolic factorization.
2. *Numerical factorization* — on the CPU reference path or on a
   simulated GPU with any of the kernel strategies (the paper's batched
   irr kernels, the naive vendor loop, the STRUMPACK-like or
   SuperLU-like models).
3. *Solve* — forward/backward substitution through the assembly tree,
   plus optional iterative refinement (§V-B solves "to machine precision
   after a single step of iterative refinement").

Example
-------
>>> solver = SparseLU(A, use_mc64=True)
>>> solver.analyze()
>>> solver.factor(device=Device(A100()), backend="batched")
>>> x, info = solver.solve(b, refine_steps=1)
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..batched.engine import resolve_engine
from ..device.memory import DeviceOutOfMemory, validate_memory_budget
from ..device.simulator import Device
from ..errors import FactorizationError, KernelLaunchError, \
    PrecisionFallback, ResourceExhausted, TransferError
from ..recovery import RecoveryLog
from .baselines import naive_loop_factor, strumpack_like_factor, \
    superlu_like_factor
from .numeric.cpu_factor import multifrontal_factor_cpu
from .numeric.gpu_factor import GpuFactorResult, multifrontal_factor_gpu
from .numeric.gpu_solve import multifrontal_solve_gpu
from .numeric.report import FactorReport, check_factors_ok
from .numeric.shard import multifrontal_factor_sharded
from .numeric.solve_plan import DeviceFactorCache, SolvePlan
from .numeric.triangular import multifrontal_solve
from .ordering.mc64 import mc64
from .ordering.nested_dissection import DEFAULT_LEAF_SIZE, nested_dissection
from .symbolic.analysis import symbolic_analysis

__all__ = ["SparseLU", "SolveInfo"]

_BACKENDS = ("cpu", "batched", "looped", "strumpack", "superlu", "sharded")

#: Refinement steps a perturbed factorization is escalated to, and the
#: backward error the escalated steps must reach (≈ eps^{3/4}).
ESCALATED_REFINE_STEPS = 8
REFINE_TARGET = 1e-12

#: GMRES-IR escalation bounds: Krylov dimension per cycle and bounded
#: restarts before a stagnating reduced-precision solve takes the FP64
#: fallback.  Flexible right-preconditioned GMRES with the cheap factors
#: as the preconditioner recovers systems whose condition number defeats
#: plain FP32-corrected refinement (κ ≳ 1/eps32) but not FP64 itself.
GMRES_RESTART = 16
GMRES_MAX_RESTARTS = 3

#: Plain refinement is declared stagnant (and GMRES-IR takes over) when
#: one step shrinks the backward error by less than this factor.
_STAGNATION_RATIO = 0.25

#: Reduced working precision of each native dtype (``precision="fp32"``).
_REDUCED_OF = {np.dtype(np.float64): np.dtype(np.float32),
               np.dtype(np.complex128): np.dtype(np.complex64)}


@dataclass
class SolveInfo:
    """Per-solve diagnostics: residual after each refinement step.

    ``escalated`` is set when the solve ran extra refinement steps
    because the factorization statically replaced pivots; ``report``
    carries the factorization's :class:`FactorReport` (``None`` for
    report-less baseline factors).

    ``recovery`` — set for device solves — is the
    :class:`~repro.recovery.RecoveryLog` slice of resilience actions
    taken during this solve (transfer retries, cache evictions, a
    ``host-fallback`` when the device path was abandoned); empty for a
    clean device solve, ``None`` for host-only solves (unless a
    host-side ``precision-fallback`` had to be recorded).

    Mixed precision: ``precision`` is the working precision the
    substitutions actually ran in (``"fp32"`` covers complex64),
    ``gmres_cycles`` counts GMRES-IR restart cycles the escalation
    spent, and ``fallback`` is set when the reduced-precision factors
    could not reach :data:`REFINE_TARGET` and the solve transparently
    re-factored in FP64.
    """

    residuals: list[float] = field(default_factory=list)
    escalated: bool = False
    report: FactorReport | None = None
    recovery: RecoveryLog | None = None
    precision: str = "fp64"
    fallback: bool = False
    gmres_cycles: int = 0

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


class SparseLU:
    """Multifrontal sparse LU with selectable numeric backends."""

    def __init__(self, a: sp.spmatrix, *, use_mc64: bool = False,
                 leaf_size: int = DEFAULT_LEAF_SIZE):
        a = sp.csr_matrix(a)
        if np.iscomplexobj(a.data):
            a = a.astype(np.complex128)
        else:
            a = a.astype(np.float64)
        if a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        self.a = a
        self.n = a.shape[0]
        self.use_mc64 = use_mc64
        self.leaf_size = leaf_size
        self._analyzed = False
        self._factored = False
        self.factor_result: GpuFactorResult | None = None
        self.factor_report: FactorReport | None = None
        self._solve_state: tuple | None = None
        #: Working precision of the current factors ("fp64" or "fp32").
        self.precision = "fp64"
        self._work_dtype = self.a.dtype
        self._precision_fallback = True
        self._factor_call: tuple | None = None
        # compiled level schedule (backend="batched", engine="compiled"):
        # survives re-factors of same-structure matrices.
        self._factor_program = None
        # Serializes device solves on this handle: two concurrent
        # solve() calls share one SolvePlan/DeviceFactorCache, and an
        # unsynchronized pair could interleave one call's cache eviction
        # with the other's upload (or free the cache out from under a
        # running sweep when budgets differ).  Host-only solves are
        # read-only and do not take the lock.
        self._solve_lock = threading.RLock()

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------
    def analyze(self) -> "SparseLU":
        """Orderings, scalings and symbolic factorization."""
        a = self.a
        if self.use_mc64:
            self._mc64 = mc64(a.tocsc())
            a = self._mc64.apply(a)
        else:
            self._mc64 = None
        self.a_pre = a.tocsr()

        self.nd = nested_dissection(self.a_pre, leaf_size=self.leaf_size)
        self.a_perm = self.a_pre[self.nd.perm][:, self.nd.perm].tocsr()
        self.symb = symbolic_analysis(self.a_perm, self.nd)
        self._analyzed = True
        return self

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------
    def factor(self, *, backend: str = "cpu",
               device: Device | None = None,
               precision: str | None = None,
               precision_fallback: bool = True, **kw) -> "SparseLU":
        """Numerical factorization.

        ``backend="cpu"`` runs the reference path; the other backends
        (``"batched"``, ``"looped"``, ``"strumpack"``, ``"superlu"``)
        require a simulated ``device`` and record simulated timings in
        :attr:`factor_result`.  ``backend="sharded"`` factors across a
        multi-device :class:`~repro.device.node.Node` passed as
        ``device`` (subtrees on concurrent per-device timelines, Schur
        contributions over the node's modeled links — see
        :func:`~repro.sparse.numeric.shard.multifrontal_factor_sharded`);
        the factors are bitwise identical to ``backend="batched"`` on a
        single device, and :meth:`solve` works as usual (pass one of the
        node's member devices, or no device for the host path).

        ``precision="fp32"`` factors in the reduced working precision
        (float32, or complex64 for complex matrices): the permuted
        matrix is cast **once** and every assembly, panel, TRSM, GEMM
        and extend-add kernel of every backend runs in the working
        dtype — half the device bytes and twice the arithmetic peak of
        the FP64 path, and half-sized factors in the solve-phase
        :class:`DeviceFactorCache` (double the resident levels under a
        fixed ``memory_budget``).  :meth:`solve` then restores FP64
        accuracy by iterative refinement against the original
        double-precision matrix.  Pivot breakdown thresholds scale with
        the working precision's eps automatically (see
        ``PivotControl``).  If the reduced-precision factorization
        itself breaks down, the solver re-factors in FP64 — recording a
        ``precision-fallback`` in the recovery log — unless
        ``precision_fallback=False``, in which case a typed
        :class:`~repro.errors.PrecisionFallback` is raised.
        ``precision=None`` (default) or ``"fp64"`` keeps the native
        double-precision path, bit for bit.

        Breakdown policy keywords (``pivot_tol``, ``static_pivot``,
        ``replace_scale``, ``breakdown``) pass through to every backend.
        The resulting :class:`FactorReport` is kept in
        :attr:`factor_report` — also when the factorization *fails*: a
        raised :class:`~repro.errors.FactorizationError` still leaves
        the report behind for inspection, but the solver stays
        un-factored and any cached solve plan / device factor cache from
        a previous factorization is invalidated up front.
        """
        if not self._analyzed:
            self.analyze()
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {_BACKENDS}")
        if precision not in (None, "fp64", "fp32"):
            raise ValueError(f"unknown precision {precision!r}; "
                             f"choose 'fp32', 'fp64' or None")
        native = self.a_perm.dtype
        work = _REDUCED_OF[native] if precision == "fp32" else native
        # Invalidate eagerly: a failed re-factorization must not leave a
        # stale plan/cache (or stale factors) serving solves.  Taken
        # under the solve lock so a concurrent device solve finishes its
        # sweep before the cache is freed out from under it.
        with self._solve_lock:
            if self._solve_state is not None:
                self._solve_state[3].free()
                self._solve_state = None
        self._factored = False
        self.factor_report = None
        self.precision = "fp32" if work != native else "fp64"
        self._work_dtype = work
        self._precision_fallback = bool(precision_fallback)
        self._factor_call = (backend, device, dict(kw))
        a_num = self.a_perm if work == native \
            else self.a_perm.astype(work)
        try:
            self._run_factor_backend(backend, device, a_num, **kw)
        except FactorizationError as exc:
            if work == native:
                self.factor_report = exc.report
                raise
            if not self._precision_fallback:
                self.factor_report = exc.report
                raise PrecisionFallback(
                    f"reduced-precision ({work}) factorization failed — "
                    f"{exc} — and precision_fallback=False forbids the "
                    f"FP64 re-factorization", exc.report) from exc
            hlog = self._log_precision_fallback(
                device, "SparseLU.factor",
                f"{type(exc).__name__}: {exc}")
            self.precision = "fp64"
            self._work_dtype = native
            try:
                self._run_factor_backend(backend, device, self.a_perm,
                                         **kw)
            except FactorizationError as exc2:
                self.factor_report = exc2.report
                raise
            report = getattr(self.factors, "report", None)
            if hlog is not None and report is not None \
                    and report.recovery is None:
                report.recovery = hlog
        self.factor_report = getattr(self.factors, "report", None)
        self._factored = True
        return self

    def _run_factor_backend(self, backend: str, device: Device | None,
                            a_num: sp.spmatrix, **kw) -> None:
        """Dispatch one backend over the working-precision matrix."""
        if backend == "cpu":
            self.factors = multifrontal_factor_cpu(a_num, self.symb, **kw)
            self.factor_result = None
            return
        if backend == "sharded":
            from ..device.node import Node
            if not isinstance(device, Node):
                raise ValueError(
                    "backend 'sharded' needs a multi-device Node "
                    "(repro.device.Node) as its device")
            res = multifrontal_factor_sharded(device, a_num, self.symb,
                                              **kw)
            self.factors = res.factors
            self.factor_result = res
            return
        if device is None:
            raise ValueError(f"backend {backend!r} needs a device")
        if backend == "batched":
            if kw.get("engine") == "compiled":
                res = self._factor_compiled_gpu(device, a_num, **kw)
            else:
                res = multifrontal_factor_gpu(device, a_num, self.symb,
                                              strategy="batched", **kw)
        elif backend == "looped":
            res = naive_loop_factor(device, a_num, self.symb, **kw)
        elif backend == "strumpack":
            res = strumpack_like_factor(device, a_num, self.symb, **kw)
        else:
            res = superlu_like_factor(device, a_num, self.symb, **kw)
        self.factors = res.factors
        self.factor_result = res

    def _log_precision_fallback(self, device: Device | None, site: str,
                                detail: str) -> RecoveryLog | None:
        """Record a ``precision-fallback`` action — on the device's
        canonical log when one is involved, else on a local host log
        that is returned so the caller can attach it to its artifact."""
        if device is not None:
            device.recovery_log.record("precision-fallback", site=site,
                                       detail=detail)
            return None
        log = RecoveryLog()
        log.record("precision-fallback", site=site, detail=detail)
        return log

    def _factor_compiled_gpu(self, device: Device, a_num: sp.spmatrix,
                             **kw) -> GpuFactorResult:
        """``backend="batched", engine="compiled"``: compile the level
        schedule on the first factorization, replay it on re-factors of
        same-structure matrices (see :meth:`update_values`).

        Fallbacks keep the compiled mode safe to leave on: out-of-core
        budgets and payloads whose replay trips a breakdown guard run
        the ordinary bucketed path instead (recorded in the device's
        recovery log as ``compiled-fallback``); a rehearsal that breaks
        down yields no program, and the next factor() re-attempts
        compilation.
        """
        from ..batched.program import GuardTripped, PayloadMismatch
        from .numeric.program import compile_factor_program
        # Canonical index order: the compiled program's assemble closures
        # copy payload data positionally, so compile and every replay
        # must see the same per-row column order.  (The numerics are
        # order-independent — assembly densifies — so this is safe.)
        a_num.sort_indices()
        kw = dict(kw)
        kw.pop("engine", None)
        if kw.pop("strategy", "batched") != "batched":
            raise ValueError("compiled factorization is batched-only")
        if kw.get("memory_budget") is not None:
            # out-of-core traversals re-plan chunks per run: not compiled
            return multifrontal_factor_gpu(device, a_num, self.symb,
                                           strategy="batched",
                                           engine="bucketed", **kw)
        kw.pop("memory_budget", None)
        host_fallback = kw.pop("host_fallback", True)
        policy = (kw.get("gemm_mode", "hybrid"),
                  int(kw.get("hybrid_cutoff", 256)),
                  kw.get("laswp_variant", "rehearsed"),
                  int(kw.get("nb", 32)),
                  float(kw.get("pivot_tol", 0.0)),
                  bool(kw.get("static_pivot", False)),
                  None if kw.get("replace_scale") is None
                  else float(kw["replace_scale"]))

        prog = self._factor_program
        if prog is not None and (prog.device is not device
                                 or not prog.matches(a_num, policy)):
            prog.free()
            prog = self._factor_program = None
        if prog is not None:
            try:
                return prog.run(
                    a_num, pivot_tol=policy[4],
                    static_pivot=policy[5], replace_scale=policy[6],
                    breakdown=kw.get("breakdown", "raise"))
            except (GuardTripped, PayloadMismatch) as exc:
                device.recovery_log.record(
                    "compiled-fallback", site="SparseLU.factor",
                    detail=f"{type(exc).__name__}: {exc}")
                return multifrontal_factor_gpu(
                    device, a_num, self.symb, strategy="batched",
                    engine="bucketed", host_fallback=host_fallback, **kw)
        program, res = compile_factor_program(device, a_num,
                                              self.symb, **kw)
        self._factor_program = program
        return res

    def update_values(self, a_new: sp.spmatrix) -> "SparseLU":
        """Install new numeric values on the same sparsity structure.

        The orderings and symbolic analysis are value-independent, so
        they are kept; the solver drops back to un-factored and the next
        :meth:`factor` call — with ``engine="compiled"`` — replays the
        compiled level schedule instead of re-planning it.  Raises
        :class:`ValueError` when the structure differs or MC64 scaling
        is enabled (its permutation/scalings are value-dependent).
        """
        if self.use_mc64:
            raise ValueError(
                "update_values requires use_mc64=False: the MC64 "
                "permutation and scalings depend on the matrix values")
        a = sp.csr_matrix(a_new)
        a = a.astype(np.complex128 if np.iscomplexobj(a.data)
                     else np.float64)
        a.sort_indices()
        self.a.sort_indices()
        if a.shape != self.a.shape or a.dtype != self.a.dtype \
                or not np.array_equal(a.indptr, self.a.indptr) \
                or not np.array_equal(a.indices, self.a.indices):
            raise ValueError(
                "update_values requires the same shape, dtype and "
                "sparsity structure as the original matrix")
        self.a = a
        if self._analyzed:
            self.a_pre = a
            self.a_perm = self.a_pre[self.nd.perm][:, self.nd.perm].tocsr()
        with self._solve_lock:
            if self._solve_state is not None:
                self._solve_state[3].free()
                self._solve_state = None
        self._factored = False
        self.factor_result = None
        self.factor_report = None
        return self

    # ------------------------------------------------------------------
    # phase 3
    # ------------------------------------------------------------------
    def _device_solve_state(self, device: Device,
                            memory_budget: int | None,
                            engine) -> tuple[SolvePlan, DeviceFactorCache]:
        """Build (or reuse) the solve plan + device factor cache.

        The plan depends only on the factors, so one plan serves every
        device/budget; the cache is rebuilt (and its device memory
        freed) when the device or budget changes.  ``factor()``
        invalidates both.
        """
        st = self._solve_state
        if st is not None and st[0] is device and st[1] == memory_budget:
            return st[2], st[3]
        plan = st[2] if st is not None else \
            SolvePlan(self.factors, engine=engine)
        if st is not None:
            st[3].free()
        cache = DeviceFactorCache(device, self.factors, plan,
                                  memory_budget=memory_budget)
        self._solve_state = (device, memory_budget, plan, cache)
        return plan, cache

    @property
    def solve_plan(self) -> SolvePlan | None:
        """The cached :class:`SolvePlan` of the last device solve."""
        return self._solve_state[2] if self._solve_state else None

    @property
    def solve_cache(self) -> DeviceFactorCache | None:
        """The cached :class:`DeviceFactorCache` of the last device solve."""
        return self._solve_state[3] if self._solve_state else None

    def _solve_once(self, b: np.ndarray, device: Device | None = None, *,
                    engine="bucketed", rhs_block: int | None = None,
                    plan: SolvePlan | None = None,
                    cache: DeviceFactorCache | None = None,
                    work_dtype=None) -> np.ndarray:
        """One substitution pass: undo scalings/permutations around the
        permuted multifrontal solve (on the host, or batched on a
        device).  ``work_dtype`` casts the permuted right-hand side down
        to the factors' reduced working precision just before the sweep
        (the MC64 scalings stay FP64), so a mixed-precision correction
        solve moves half the bytes end to end."""
        if self._mc64 is not None:
            c = self._mc64.dr * b if b.ndim == 1 else \
                self._mc64.dr[:, None] * b
            c = c[self._mc64.row_of_col]
        else:
            c = b
        cp = c[self.nd.perm]
        if work_dtype is not None:
            cp = cp.astype(work_dtype, copy=False)
        if device is not None:
            z = multifrontal_solve_gpu(device, self.factors, cp,
                                       engine=engine,
                                       plan=plan, cache=cache,
                                       rhs_block=rhs_block).x
        else:
            z = multifrontal_solve(self.factors, cp)
        y = np.empty_like(z)
        y[self.nd.perm] = z
        if self._mc64 is not None:
            y = self._mc64.dc * y if y.ndim == 1 else \
                self._mc64.dc[:, None] * y
        return y

    def _gmres_refine(self, b: np.ndarray, x0: np.ndarray,
                      substitute) -> tuple[np.ndarray, int]:
        """GMRES-IR escalation for stagnated mixed-precision refinement.

        Right-preconditioned restarted (F)GMRES per right-hand-side
        column: the reduced-precision factors serve as the
        preconditioner (one ``substitute`` sweep per inner iteration)
        while every vector operation — matvec against the original FP64
        matrix, modified Gram-Schmidt, the small Hessenberg least-squares
        — runs in FP64.  Bounded by :data:`GMRES_RESTART` inner
        iterations per cycle and :data:`GMRES_MAX_RESTARTS` cycles per
        column; returns the refined solution and the total number of
        restart cycles spent.  Convergence is *not* guaranteed — the
        caller checks the achieved backward error afterwards.
        """
        one_col = b.ndim == 1
        b2 = b.reshape(-1, 1) if one_col else b
        x2 = np.array(x0.reshape(-1, 1) if one_col else x0)
        n = b2.shape[0]
        tiny = np.finfo(np.float64).tiny
        cycles = 0
        for col in range(b2.shape[1]):
            bc = b2[:, col]
            norm_bc = float(np.linalg.norm(bc))
            target = REFINE_TARGET * (norm_bc if norm_bc else 1.0)
            xc = x2[:, col]
            for _ in range(GMRES_MAX_RESTARTS):
                r = bc - self.a @ xc
                beta = float(np.linalg.norm(r))
                if beta <= target:
                    break
                cycles += 1
                m = GMRES_RESTART
                V = np.zeros((n, m + 1), dtype=b2.dtype)
                Z = np.zeros((n, m), dtype=b2.dtype)
                H = np.zeros((m + 1, m), dtype=b2.dtype)
                e1 = np.zeros(m + 1, dtype=b2.dtype)
                e1[0] = beta
                V[:, 0] = r / beta
                y = np.zeros(0, dtype=b2.dtype)
                k = 0
                for j in range(m):
                    # flexible: keep the preconditioned vector so the
                    # update stays exact even though ``substitute`` is a
                    # reduced-precision (hence slightly varying) operator
                    Z[:, j] = np.asarray(substitute(V[:, j]),
                                         dtype=b2.dtype)
                    w = self.a @ Z[:, j]
                    for i in range(j + 1):
                        H[i, j] = np.vdot(V[:, i], w)
                        w = w - H[i, j] * V[:, i]
                    h = float(np.linalg.norm(w))
                    H[j + 1, j] = h
                    y, res, _, _ = np.linalg.lstsq(H[:j + 2, :j + 1],
                                                   e1[:j + 2], rcond=None)
                    k = j + 1
                    est = float(np.sqrt(res[0])) if res.size else \
                        float(np.linalg.norm(
                            e1[:j + 2] - H[:j + 2, :j + 1] @ y))
                    if est <= target or h < tiny:
                        break     # converged (or lucky breakdown)
                    V[:, j + 1] = w / h
                if y.size:
                    xc = xc + Z[:, :k] @ y
            x2[:, col] = xc
        return (x2[:, 0] if one_col else x2), cycles

    def solve(self, b: np.ndarray, *, refine_steps: int = 1,
              device: Device | None = None, engine="bucketed",
              memory_budget: int | None = None,
              rhs_block: int | None = None
              ) -> tuple[np.ndarray, SolveInfo]:
        """Solve ``A·x = b`` with optional iterative refinement.

        Pass ``device`` to run the substitution phase with the batched
        per-level GPU kernels instead of the host reference.  Device
        solves with the default ``engine="bucketed"`` build a
        :class:`SolvePlan` + :class:`DeviceFactorCache` on first use and
        reuse them for every later solve against the same factors —
        including the refinement passes of this call — so repeated
        solves pay no per-solve setup.  ``memory_budget`` bounds the
        cache's device bytes (``None`` = keep all factor levels
        resident); ``rhs_block`` blocks many-column ``b`` through the
        sweeps.  ``engine="naive"`` streams factors per solve (the
        bitwise-identical reference path).

        Resource recovery: when the device path exhausts its options —
        a :class:`~repro.errors.ResourceExhausted`, a persistent
        transfer/launch fault, or an OOM nothing could relieve — the
        solve falls back to the host substitution path for the rest of
        the call (refinement passes included), records a
        ``host-fallback`` in the device's recovery log, and still
        returns a correct solution.  ``info.recovery`` carries the log
        slice of every resilience action this call took.  A
        ``memory_budget`` that is not ``None`` or a positive integer
        raises :class:`ValueError` up front.

        The right-hand side is promoted with ``np.result_type``: a
        complex ``b`` against a real ``A`` yields a complex solution
        (the imaginary part is never silently dropped).

        Breakdown handling: factors whose :class:`FactorReport` records
        an unrecovered pivot breakdown are refused with a
        :class:`~repro.errors.FactorizationError`.  When the
        factorization statically replaced pivots, refinement is
        auto-escalated to at least :data:`ESCALATED_REFINE_STEPS` steps
        (the extra steps stop early once the backward error reaches
        :data:`REFINE_TARGET`); if it still stagnates above the target —
        the perturbed factors do not define a usable solution — a
        :class:`~repro.errors.FactorizationError` is raised instead of
        returning a garbage ``x``.  Non-finite substitution output
        raises the same typed error, never silently returns NaN/Inf.

        Mixed precision: after ``factor(precision="fp32")`` each
        substitution sweep runs in the reduced working precision while
        the residuals, the solution accumulator and the refinement
        updates stay FP64 against the original matrix.  Refinement is
        always escalated; if it stagnates (successive residuals shrink
        by less than :data:`_STAGNATION_RATIO`) the solve switches to
        GMRES-IR-style bounded restarts (:meth:`_gmres_refine`).  If
        even that misses :data:`REFINE_TARGET`, the solver re-factors in
        FP64, records a ``precision-fallback`` recovery action and
        solves again (``info.fallback`` is set) — or raises
        :class:`~repro.errors.PrecisionFallback` when the handle was
        factored with ``precision_fallback=False``.  ``info.precision``
        always names the precision that produced the returned ``x``.
        """
        if not self._factored:
            raise RuntimeError("factor() must run before solve()")
        refine_steps = int(refine_steps)
        if refine_steps < 0:
            raise ValueError(
                f"refine_steps must be >= 0, got {refine_steps}")
        memory_budget = validate_memory_budget(memory_budget)
        check_factors_ok(self.factors, "solve")
        report = getattr(self.factors, "report", None)
        perturbed = report is not None and report.total_replaced > 0
        b = np.asarray(b)
        b = b.astype(np.result_type(self.a.dtype, b.dtype), copy=False)
        # Device solves serialize on the handle (see ``_solve_lock``):
        # the shared plan / factor cache admit one logical solve at a
        # time, so a concurrent solve cannot interleave its cache
        # eviction with this one's upload.  Host-only solves are
        # read-only over the factors and run lock-free.
        with self._solve_lock if device is not None else nullcontext():
            eng = resolve_engine(engine)
            mark = device.recovery_log.mark() if device is not None else 0
            reduced = self.precision == "fp32"
            # The device is dropped for the rest of this call (all
            # remaining substitution passes included) the first time its
            # recovery options run dry — the host path is the ladder's
            # last rung.  ``work`` is the dtype the permuted rhs is cast
            # to before each sweep (None = native); plan/cache/report
            # are re-pointed when a precision fallback re-factors.
            state = {"device": device, "plan": None, "cache": None,
                     "work": _REDUCED_OF[b.dtype] if reduced else None,
                     "report": report}
            if device is not None and eng is not None:
                state["plan"], state["cache"] = \
                    self._device_solve_state(device, memory_budget, eng)

            def substitute(rhs):
                dev = state["device"]
                if dev is not None:
                    try:
                        y = self._solve_once(rhs, dev, engine=engine,
                                             rhs_block=rhs_block,
                                             plan=state["plan"],
                                             cache=state["cache"],
                                             work_dtype=state["work"])
                    except (ResourceExhausted, DeviceOutOfMemory,
                            TransferError, KernelLaunchError) as exc:
                        state["device"] = None
                        dev.recovery_log.record(
                            "host-fallback", site="SparseLU.solve",
                            detail=f"{type(exc).__name__}: {exc}")
                        y = self._solve_once(rhs, None, engine=engine,
                                             rhs_block=rhs_block,
                                             work_dtype=state["work"])
                else:
                    y = self._solve_once(rhs, None, engine=engine,
                                         rhs_block=rhs_block,
                                         work_dtype=state["work"])
                if not np.all(np.isfinite(y)):
                    raise FactorizationError(
                        "substitution produced non-finite values — the "
                        "factors are numerically unusable; re-factor with "
                        "static_pivot=True (or MC64 scaling)",
                        state["report"])
                return y

            info = SolveInfo(report=report,
                             precision="fp32" if reduced else "fp64")
            norm_b = float(np.linalg.norm(b))
            denom = norm_b if norm_b else 1.0

            def resid(xv):
                return float(np.linalg.norm(b - self.a @ xv) / denom)

            def run_ladder(reduced_now):
                """Direct solve + bounded plain refinement.  Residuals
                are always computed against the FP64 matrix; a reduced
                solve accumulates its corrections in FP64 and always
                escalates (the cheap factors *need* refinement)."""
                x = substitute(b)
                if reduced_now:
                    x = x.astype(b.dtype, copy=False)
                info.residuals.append(resid(x))
                max_steps = max(refine_steps, ESCALATED_REFINE_STEPS) \
                    if (perturbed or reduced_now) else refine_steps
                for step in range(max_steps):
                    if step >= refine_steps and \
                            info.residuals[-1] <= REFINE_TARGET:
                        break
                    if reduced_now and len(info.residuals) >= 2 and \
                            info.residuals[-1] > REFINE_TARGET and \
                            info.residuals[-1] > _STAGNATION_RATIO * \
                            info.residuals[-2]:
                        break     # stagnant — hand over to GMRES-IR
                    if step >= refine_steps:
                        info.escalated = True
                    r = b - self.a @ x
                    x = x + substitute(r)
                    info.residuals.append(resid(x))
                return x

            x = None
            failure = None
            host_log = None
            try:
                x = run_ladder(reduced)
            except FactorizationError as exc:
                if not reduced:
                    raise
                failure = exc

            if reduced:
                if failure is None and info.residuals[-1] > REFINE_TARGET:
                    # plain refinement stagnated above the target:
                    # GMRES-IR-style bounded restarts, preconditioned by
                    # the same cheap factors
                    try:
                        x, cycles = self._gmres_refine(b, x, substitute)
                        info.gmres_cycles = cycles
                        if cycles:
                            info.escalated = True
                        info.residuals.append(resid(x))
                    except FactorizationError as exc:
                        failure = exc
                if failure is not None \
                        or info.residuals[-1] > REFINE_TARGET:
                    achieved = info.residuals[-1] if info.residuals \
                        else float("nan")
                    if not self._precision_fallback:
                        if device is not None:
                            info.recovery = device.recovery_log.since(mark)
                        err = PrecisionFallback(
                            f"mixed-precision solve reached backward "
                            f"error {achieved:.3e} (target "
                            f"{REFINE_TARGET:g}) and "
                            f"precision_fallback=False forbids the FP64 "
                            f"re-factorization", report,
                            achieved=achieved, target=REFINE_TARGET)
                        if failure is not None:
                            raise err from failure
                        raise err
                    detail = (f"backward error {achieved:.3e} > target "
                              f"{REFINE_TARGET:g}")
                    if failure is not None:
                        detail = f"{type(failure).__name__}: {failure}"
                    host_log = self._log_precision_fallback(
                        device, "SparseLU.solve", detail)
                    backend_f, device_f, kw_f = self._factor_call
                    self.factor(backend=backend_f, device=device_f,
                                precision="fp64", **kw_f)
                    check_factors_ok(self.factors, "solve")
                    report = getattr(self.factors, "report", None)
                    perturbed = report is not None \
                        and report.total_replaced > 0
                    state["report"] = report
                    state["work"] = None
                    state["device"] = device
                    state["plan"] = state["cache"] = None
                    if device is not None and eng is not None:
                        state["plan"], state["cache"] = \
                            self._device_solve_state(device,
                                                     memory_budget, eng)
                    info.report = report
                    info.fallback = True
                    info.precision = "fp64"
                    x = run_ladder(False)

            if perturbed and info.residuals[-1] > REFINE_TARGET:
                raise FactorizationError(
                    f"iterative refinement stagnated at backward error "
                    f"{info.residuals[-1]:.3e} (target {REFINE_TARGET:g}) "
                    f"after {len(info.residuals) - 1} step(s) on a "
                    f"factorization with {report.total_replaced} "
                    f"statically replaced pivot(s) — the matrix is "
                    f"singular or too ill-conditioned for static-pivot "
                    f"recovery", report)
            if device is not None:
                info.recovery = device.recovery_log.since(mark)
            elif host_log is not None:
                info.recovery = host_log
            return x, info
