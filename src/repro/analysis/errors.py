"""Numerical-quality metrics used across the experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["trsm_backward_error", "lu_backward_error", "relative_residual",
           "max_trsm_backward_error"]


def trsm_backward_error(t: np.ndarray, x: np.ndarray, b: np.ndarray,
                        uplo: str = "L", trans: str = "N",
                        unit_diagonal: bool = False) -> float:
    """The paper's Fig 6 metric: ``max |b − T·x| / |b|`` (∞-norm ratio)."""
    tt = np.tril(t) if uplo == "L" else np.triu(t)
    if unit_diagonal:
        tt = tt.copy()
        np.fill_diagonal(tt, 1.0)
    if trans == "T":
        tt = tt.T
    r = b - tt @ x
    denom = np.abs(b).max()
    if denom == 0.0:
        return float(np.abs(r).max())
    return float(np.abs(r).max() / denom)


def max_trsm_backward_error(ts, xs, bs, **kw) -> float:
    """Maximum backward error across a batch (what Fig 6 plots)."""
    return max((trsm_backward_error(t, x, b, **kw)
                for t, x, b in zip(ts, xs, bs)), default=0.0)


def lu_backward_error(a: np.ndarray, factored: np.ndarray,
                      ipiv: np.ndarray) -> float:
    """``‖P·A − L·U‖_max / ‖A‖_max`` for packed LU factors."""
    m, n = a.shape
    k = min(m, n)
    pa = a.copy()
    for r in range(k):
        p = int(ipiv[r])
        if p != r:
            pa[[r, p], :] = pa[[p, r], :]
    lower = np.tril(factored[:, :k], -1) + np.eye(m, k)
    upper = np.triu(factored[:k, :])
    denom = np.abs(a).max()
    num = np.abs(pa - lower @ upper).max()
    return float(num / denom) if denom else float(num)


def relative_residual(a, x, b) -> float:
    """``‖b − A·x‖₂ / ‖b‖₂`` with ``a`` dense, sparse, or a matvec."""
    if callable(a):
        r = b - a(x)
    else:
        r = b - a @ x
    denom = float(np.linalg.norm(b))
    return float(np.linalg.norm(r) / denom) if denom else \
        float(np.linalg.norm(r))
