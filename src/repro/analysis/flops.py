"""Operation counts — low-order terms kept, as the paper insists (§III-B).

"In our performance measurements, we do not drop the low order terms of
the expression since we are dealing with relatively small matrices."
"""

from __future__ import annotations

import numpy as np

__all__ = ["getrf_flops", "getrf_flops_paper_square", "trsm_flops",
           "gemm_flops", "batch_getrf_flops", "batch_trsm_flops"]


def getrf_flops(m: int, n: int) -> float:
    """Exact flop count of an LU with partial pivoting on an M×N matrix.

    Closed form of ``Σ_{c=0}^{k-1} [(m−c−1) + 2(m−c−1)(n−c−1)]`` with
    ``k = min(m, n)`` — one division per sub-diagonal entry plus the
    rank-1 update.  For ``m == n`` this reduces to the paper's §III-B
    expression ``m·n² − n³/3 − n²/2 + 5n/6`` up to its typo'd low-order
    terms (comparisons for pivot search are not counted, as in LAPACK).
    """
    m = float(m)
    n = float(n)
    k = min(m, n)
    if k <= 0:
        return 0.0
    # Σ (m-c-1) for c in [0, k)
    scale = m * k - k * (k - 1) / 2 - k
    # Σ 2 (m-c-1)(n-c-1)
    c = np.arange(k)
    update = 2.0 * float(np.sum((m - c - 1) * (n - c - 1)))
    return scale + update


def getrf_flops_paper_square(n: int) -> float:
    """The paper's §V-A aggregate formula for a square LU:
    ``2n³/3 + n²/2 + 5n/6`` (used when reporting Fig 10/11 FLOP rates,
    so rates are comparable with the paper's plots)."""
    n = float(n)
    return 2.0 * n ** 3 / 3.0 + n ** 2 / 2.0 + 5.0 * n / 6.0


def trsm_flops(order: int, nrhs: int) -> float:
    """Triangular solve with ``nrhs`` right-hand sides: ``n·m²`` in the
    paper's Fig 6 accounting (order ``m``, ``n`` right-hand sides)."""
    return float(nrhs) * float(order) ** 2


def gemm_flops(m: int, n: int, k: int) -> float:
    """Matrix multiply: ``2mnk``."""
    return 2.0 * float(m) * float(n) * float(k)


def batch_getrf_flops(m_vec, n_vec) -> float:
    """Aggregate LU flops over an irregular batch."""
    return float(sum(getrf_flops(int(m), int(n))
                     for m, n in zip(m_vec, n_vec)))


def batch_trsm_flops(order_vec, nrhs_vec) -> float:
    """Aggregate TRSM flops over an irregular batch (paper's Σ n_i·m_i²)."""
    return float(sum(trsm_flops(int(o), int(r))
                     for o, r in zip(order_vec, nrhs_vec)))
