"""ASCII table/series formatting shared by every benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "fmt_time", "fmt_rate"]


def _cell(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    srows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, x_name: str, xs: Sequence,
                  series: dict[str, Sequence]) -> str:
    """Render one figure's data: x column plus one column per curve."""
    headers = [x_name, *series.keys()]
    rows = [[x, *(vals[i] for vals in series.values())]
            for i, x in enumerate(xs)]
    return format_table(headers, rows, title=title)


def fmt_time(seconds: float) -> str:
    """Human-readable simulated time."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def fmt_rate(flops: float, seconds: float) -> float:
    """Gflop/s from an aggregate flop count and elapsed seconds."""
    return flops / seconds / 1e9 if seconds > 0 else 0.0
