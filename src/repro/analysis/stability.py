"""Stability diagnostics for restricted-pivoting factorizations.

§III-A: "the pivoting is restricted to the diagonal blocks, but for most
problems, especially when combined with the permutation Q [MC64], this is
sufficient to ensure numerical stability."  These diagnostics make that
claim measurable: the *element growth factor* of the multifrontal
factorization (max factor entry over max input entry — the quantity
restricted pivoting risks) and per-front pivot statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["growth_factor", "front_pivot_report", "StabilityReport"]


@dataclass
class StabilityReport:
    """Growth and pivot statistics of a multifrontal factorization."""

    growth: float                 # max |factor entry| / max |A entry|
    min_pivot: float              # smallest |U diagonal| across fronts
    max_pivot: float
    worst_front: int              # front id with the largest growth
    n_fronts: int

    @property
    def stable(self) -> bool:
        """A pragmatic flag: growth below the classical 2^k bound region
        that iterative refinement reliably cleans up."""
        return np.isfinite(self.growth) and self.growth < 1e8


def growth_factor(a_abs_max: float, factors) -> StabilityReport:
    """Compute the element growth of :class:`MultifrontalFactors`.

    ``a_abs_max`` is ``max |A_ij|`` of the (scaled, permuted) input; the
    factor entries examined are every front's packed L/U blocks.
    """
    worst = -1
    gmax = 0.0
    pmin = np.inf
    pmax = 0.0
    for fid, f in enumerate(factors.fronts):
        local = 0.0
        for block in (f.f11, f.f12, f.f21):
            if block.size:
                local = max(local, float(np.abs(block).max()))
        if f.f11.size:
            d = np.abs(np.diag(f.f11))
            if d.size:
                pmin = min(pmin, float(d.min()))
                pmax = max(pmax, float(d.max()))
        if local > gmax:
            gmax, worst = local, fid
    denom = a_abs_max if a_abs_max > 0 else 1.0
    return StabilityReport(growth=gmax / denom,
                           min_pivot=float(pmin if np.isfinite(pmin)
                                           else 0.0),
                           max_pivot=pmax, worst_front=worst,
                           n_fronts=len(factors.fronts))


def front_pivot_report(factors) -> list[dict]:
    """Per-front pivot summary (front id, order, |pivot| range)."""
    out = []
    for fid, f in enumerate(factors.fronts):
        if not f.f11.size:
            continue
        d = np.abs(np.diag(f.f11))
        out.append({"front": fid, "order": f.f11.shape[0],
                    "min_pivot": float(d.min()),
                    "max_pivot": float(d.max())})
    return out
