"""Flop counting, error metrics and report formatting."""

from .errors import lu_backward_error, max_trsm_backward_error, \
    relative_residual, trsm_backward_error
from .flops import batch_getrf_flops, batch_trsm_flops, gemm_flops, \
    getrf_flops, getrf_flops_paper_square, trsm_flops
from .report import fmt_rate, fmt_time, format_series, format_table
from .stability import StabilityReport, front_pivot_report, growth_factor

__all__ = [
    "getrf_flops", "getrf_flops_paper_square", "trsm_flops", "gemm_flops",
    "batch_getrf_flops", "batch_trsm_flops",
    "trsm_backward_error", "max_trsm_backward_error", "lu_backward_error",
    "relative_residual",
    "format_table", "format_series", "fmt_time", "fmt_rate",
    "growth_factor", "front_pivot_report", "StabilityReport",
]
