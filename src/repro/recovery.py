"""Recovery logging: a structured trail of every resilience action.

The fault-tolerant device pipeline (checksummed transfers, OOM
backpressure, transactional level execution) never recovers silently:
each retry, split, shrink, eviction and fallback appends a
:class:`RecoveryEvent` to a :class:`RecoveryLog`.  The log is attached
to the artifacts a caller already holds — the
:class:`~repro.sparse.numeric.report.FactorReport` of a factorization,
the :class:`~repro.sparse.solver.SolveInfo` of a solve, and any
:class:`~repro.errors.ResourceExhausted` raised when the ladder runs
dry — so "the run succeeded but limped" is always observable.

Every :class:`~repro.device.simulator.Device` owns one canonical log
(``device.recovery_log``); layered code brackets its own work with
:meth:`RecoveryLog.mark` / :meth:`RecoveryLog.since` to carve out the
events belonging to a single factorization or solve while keeping the
device-wide ordering intact.

Actions (the closed vocabulary used across the stack):

========================  ====================================================
``transfer-retry``        a checksummed H2D/D2H transfer re-ran after
                          detected corruption
``launch-retry``          a level transaction re-ran after an injected or
                          runtime kernel-launch failure
``alloc-retry``           a level transaction re-ran after a transient
                          allocation failure
``level-split``           a level's front batch was split into sub-batches
                          to shrink its transient footprint
``chunk-shrink``          the out-of-core traversal budget was reduced and
                          the factorization restarted
``cache-evict``           a device-resident factor level was spilled (freed;
                          the host copy is authoritative) to make room
``host-fallback``         the device path was abandoned for the host path
``precision-fallback``    a reduced-precision (FP32/complex64)
                          factorization was redone in FP64 because
                          refinement could not reach the FP64 target
========================  ====================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["RecoveryEvent", "RecoveryLog"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken by the resilient pipeline.

    Attributes
    ----------
    action:
        Action slug (see the module docstring for the vocabulary).
    site:
        Where the action happened (kernel name, transfer site, phase).
    attempt:
        1-based attempt number for retry-shaped actions, else 1.
    detail:
        Free-form context (byte counts, front ids, error text).
    """

    action: str
    site: str = ""
    attempt: int = 1
    detail: str = ""

    def __str__(self) -> str:
        parts = [self.action]
        if self.site:
            parts.append(f"@{self.site}")
        if self.attempt > 1:
            parts.append(f"attempt={self.attempt}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class RecoveryLog:
    """Ordered collection of :class:`RecoveryEvent` entries.

    Append-only; :meth:`mark`/:meth:`since` slice out the events of one
    logical operation from a long-lived (device-owned) log.

    Thread safety: a device-owned log is shared by every worker a
    service runs against the device, so :meth:`record` and the
    :meth:`mark`/:meth:`since` slicers synchronize on an internal lock —
    concurrent recorders interleave whole events, never corrupt the
    list.  Marks taken by one worker only delimit *its own* region when
    callers serialize their device work (the solver service does).
    """

    events: list[RecoveryEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, action: str, *, site: str = "", attempt: int = 1,
               detail: str = "") -> RecoveryEvent:
        """Append one event and return it."""
        ev = RecoveryEvent(action=action, site=site, attempt=attempt,
                           detail=detail)
        with self._lock:
            self.events.append(ev)
        return ev

    # -- slicing -----------------------------------------------------------
    def mark(self) -> int:
        """Current position; pass to :meth:`since` to scope a region."""
        with self._lock:
            return len(self.events)

    def since(self, mark: int) -> "RecoveryLog":
        """New log holding the events recorded after ``mark``."""
        with self._lock:
            return RecoveryLog(events=list(self.events[mark:]))

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def actions(self) -> list[str]:
        return [ev.action for ev in self.events]

    def count(self, action: str | None = None) -> int:
        """Number of events, optionally restricted to one action."""
        if action is None:
            return len(self.events)
        return sum(1 for ev in self.events if ev.action == action)

    def counts(self) -> dict[str, int]:
        """Event counts grouped by action."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.action] = out.get(ev.action, 0) + 1
        return out

    def summary(self) -> str:
        """One-line digest, e.g. ``"transfer-retry x2, chunk-shrink x1"``."""
        if not self.events:
            return "no recovery actions"
        return ", ".join(f"{action} x{n}"
                         for action, n in sorted(self.counts().items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecoveryLog({self.summary()})"
