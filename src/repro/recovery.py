"""Recovery logging: a structured trail of every resilience action.

The fault-tolerant device pipeline (checksummed transfers, OOM
backpressure, transactional level execution, ABFT kernel verification)
never recovers silently: each retry, split, shrink, eviction,
re-execution and fallback appends a :class:`RecoveryEvent` to a
:class:`RecoveryLog`.  The log is attached to the artifacts a caller
already holds — the
:class:`~repro.sparse.numeric.report.FactorReport` of a factorization,
the :class:`~repro.sparse.solver.SolveInfo` of a solve, and any
:class:`~repro.errors.ResourceExhausted` raised when the ladder runs
dry — so "the run succeeded but limped" is always observable.

Every :class:`~repro.device.simulator.Device` owns one canonical log
(``device.recovery_log``); layered code brackets its own work with
:meth:`RecoveryLog.mark` / :meth:`RecoveryLog.since` to carve out the
events belonging to a single factorization or solve while keeping the
device-wide ordering intact.

The log is **bounded**: event payloads live in a ring buffer of
``capacity`` entries (default :data:`DEFAULT_CAPACITY`), so a
long-running service under sustained chaos cannot grow it without
limit.  Counting stays **exact** regardless of eviction — ``len``,
:meth:`RecoveryLog.count`, :meth:`RecoveryLog.counts` and
:meth:`RecoveryLog.summary` are served from monotone per-action
counters, and :meth:`mark`/:meth:`since` speak absolute positions, so
a mark taken before old events were evicted still scopes correctly
over whatever is retained.

Actions (the closed vocabulary used across the stack):

========================  ====================================================
``transfer-retry``        a checksummed H2D/D2H transfer re-ran after
                          detected corruption (with exponential backoff
                          and seeded jitter, recorded in ``detail``)
``launch-retry``          a level transaction re-ran after an injected or
                          runtime kernel-launch failure
``alloc-retry``           a level transaction re-ran after a transient
                          allocation failure
``kernel-reexec``         a launch group (or compiled program) re-executed
                          after ABFT checksum verification detected a
                          corrupted kernel output
``level-split``           a level's front batch was split into sub-batches
                          to shrink its transient footprint (or to isolate
                          a persistently corrupted front)
``front-quarantine``      a single front whose kernels stayed corrupted
                          through the re-execution budget was zeroed and
                          flagged (``info = -2``) instead of returning
                          silently wrong factors
``chunk-shrink``          the out-of-core traversal budget was reduced and
                          the factorization restarted
``cache-evict``           a device-resident factor level was spilled (freed;
                          the host copy is authoritative) to make room
``host-fallback``         the device path was abandoned for the host path
``precision-fallback``    a reduced-precision (FP32/complex64)
                          factorization was redone in FP64 because
                          refinement could not reach the FP64 target
========================  ====================================================
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["RecoveryEvent", "RecoveryLog", "DEFAULT_CAPACITY"]

#: default ring-buffer bound on retained event payloads; chosen well
#: above what one factorization/solve produces so scoped ``since``
#: slices are lossless in practice, while bounding a service's
#: device-lifetime log.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken by the resilient pipeline.

    Attributes
    ----------
    action:
        Action slug (see the module docstring for the vocabulary).
    site:
        Where the action happened (kernel name, transfer site, phase).
    attempt:
        1-based attempt number for retry-shaped actions, else 1.
    detail:
        Free-form context (byte counts, front ids, backoff, error text).
    """

    action: str
    site: str = ""
    attempt: int = 1
    detail: str = ""

    def __str__(self) -> str:
        parts = [self.action]
        if self.site:
            parts.append(f"@{self.site}")
        if self.attempt > 1:
            parts.append(f"attempt={self.attempt}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


class RecoveryLog:
    """Bounded, ordered collection of :class:`RecoveryEvent` entries.

    Append-only with ring-buffer retention; :meth:`mark`/:meth:`since`
    slice out the events of one logical operation from a long-lived
    (device-owned) log using absolute positions, so they stay correct
    after old payloads are evicted.

    Thread safety: a device-owned log is shared by every worker a
    service runs against the device, so :meth:`record` and the
    :meth:`mark`/:meth:`since` slicers synchronize on an internal lock —
    concurrent recorders interleave whole events, never corrupt the
    ring.  Marks taken by one worker only delimit *its own* region when
    callers serialize their device work (the solver service does).
    """

    def __init__(self, events=(), *, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        events = list(events)
        self.capacity = int(capacity)
        self._ring: deque[RecoveryEvent] = deque(events, maxlen=capacity)
        self._total = len(events)
        self._counts: dict[str, int] = {}
        for ev in events:
            self._counts[ev.action] = self._counts.get(ev.action, 0) + 1
        self._lock = threading.Lock()

    def record(self, action: str, *, site: str = "", attempt: int = 1,
               detail: str = "") -> RecoveryEvent:
        """Append one event and return it."""
        ev = RecoveryEvent(action=action, site=site, attempt=attempt,
                           detail=detail)
        with self._lock:
            self._ring.append(ev)
            self._total += 1
            self._counts[action] = self._counts.get(action, 0) + 1
        return ev

    # -- slicing -----------------------------------------------------------
    def mark(self) -> int:
        """Current absolute position; pass to :meth:`since` to scope a
        region.  Positions are monotone over the log's whole lifetime,
        not ring offsets, so a mark survives eviction."""
        with self._lock:
            return self._total

    def since(self, mark: int) -> "RecoveryLog":
        """New log holding the events recorded after absolute position
        ``mark`` (those still retained; events evicted from the ring in
        the meantime are gone from the slice, never miscounted)."""
        with self._lock:
            dropped = self._total - len(self._ring)
            start = max(0, mark - dropped)
            return RecoveryLog(list(self._ring)[start:],
                               capacity=self.capacity)

    # -- inspection --------------------------------------------------------
    @property
    def events(self) -> list[RecoveryEvent]:
        """Snapshot of the retained event payloads (oldest first)."""
        with self._lock:
            return list(self._ring)

    @property
    def dropped(self) -> int:
        """Number of event payloads evicted by the ring bound (their
        per-action counts remain exact)."""
        with self._lock:
            return self._total - len(self._ring)

    def __len__(self) -> int:
        """Total number of events ever recorded (exact, unbounded)."""
        return self._total

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return self._total > 0

    @property
    def actions(self) -> list[str]:
        return [ev.action for ev in self.events]

    def count(self, action: str | None = None) -> int:
        """Exact number of events ever recorded, optionally restricted
        to one action — exact even after ring eviction."""
        with self._lock:
            if action is None:
                return self._total
            return self._counts.get(action, 0)

    def counts(self) -> dict[str, int]:
        """Exact event counts grouped by action."""
        with self._lock:
            return {a: n for a, n in self._counts.items() if n}

    def summary(self) -> str:
        """One-line digest, e.g. ``"transfer-retry x2, chunk-shrink x1"``."""
        counts = self.counts()
        if not counts:
            return "no recovery actions"
        return ", ".join(f"{action} x{n}"
                         for action, n in sorted(counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecoveryLog({self.summary()})"
