"""Workload generators for the batched-kernel experiments (§V-A).

The paper's microbenchmark workloads: "Each testing point represents one
thousand square matrices, whose sizes are randomly sampled between 1 and
the value shown on the x-axis" (Fig 10), a small number of large matrices
(Fig 11), small triangular systems with varying right-hand-side counts
(Fig 6), and fixed-width panels of varying heights (Fig 7).
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_random_sizes", "random_square_batch",
           "large_square_batch", "triangular_batch", "panel_batch"]


def uniform_random_sizes(batch_size: int, max_size: int, *,
                         min_size: int = 1,
                         seed: int = 0) -> np.ndarray:
    """Sizes ~ U[min_size, max_size], the Fig 10 distribution."""
    if max_size < min_size:
        raise ValueError("max_size must be >= min_size")
    rng = np.random.default_rng(seed)
    return rng.integers(min_size, max_size + 1, size=batch_size)


def random_square_batch(batch_size: int, max_size: int, *,
                        seed: int = 0) -> list[np.ndarray]:
    """Fig 10 workload: square matrices with sizes ~ U[1, max_size]."""
    rng = np.random.default_rng(seed)
    sizes = uniform_random_sizes(batch_size, max_size, seed=seed + 1)
    return [rng.standard_normal((int(n), int(n))) for n in sizes]


def large_square_batch(count: int, size: int, *,
                       seed: int = 0) -> list[np.ndarray]:
    """Fig 11 workload: a few equal, relatively large matrices."""
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((size, size)) for _ in range(count)]


def triangular_batch(batch_size: int, max_order: int, nrhs: int, *,
                     seed: int = 0
                     ) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Fig 6 workload: well-scaled lower triangles + right-hand sides."""
    rng = np.random.default_rng(seed)
    orders = uniform_random_sizes(batch_size, max_order, seed=seed + 1)
    ts, bs = [], []
    for n in orders:
        n = int(n)
        t = np.tril(rng.standard_normal((n, n))) / max(np.sqrt(n), 1.0)
        signs = np.where(np.diag(t) < 0, -1.0, 1.0)
        np.fill_diagonal(t, signs * (0.5 + np.abs(np.diag(t))))
        ts.append(t)
        bs.append(rng.standard_normal((n, nrhs)))
    return ts, bs


def panel_batch(batch_size: int, height: int, width: int, *,
                vary: bool = True, seed: int = 0) -> list[np.ndarray]:
    """Fig 7 workload: tall panels of fixed width.

    With ``vary=True``, heights are sampled U[width, height] (irregular);
    otherwise all panels share the nominal height.
    """
    rng = np.random.default_rng(seed)
    if vary:
        hs = uniform_random_sizes(batch_size, height, min_size=width,
                                  seed=seed + 1)
    else:
        hs = np.full(batch_size, height)
    return [rng.standard_normal((int(h), width)) for h in hs]
