"""Pathological-matrix gallery for pivot-breakdown validation.

A curated set of sparse systems that stress the multifrontal pipeline's
breakdown detection and static-pivot recovery end to end: graded and
ill-conditioned diagonals, sign-indefinite Maxwell-like shifts, tiny
uniformly-scaled entries (which must *not* trip the detector), exactly
singular matrices (zero rows/columns, duplicate rows) whose fronts break
down, and saddle-point systems with structurally zero diagonal blocks.

:func:`run_gallery` drives every entry through ``SparseLU`` on a chosen
backend/engine and reduces each to a single auditable outcome: either it
solves to a small backward error, or it raises a typed
:class:`~repro.errors.FactorizationError` carrying a per-front
:class:`~repro.sparse.numeric.report.FactorReport` — never silent
NaN/Inf.  The bucketed and naive engines must agree bitwise on every
diagnostic, which the gallery tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..errors import FactorizationError

__all__ = ["GalleryEntry", "GALLERY", "gallery_entry", "gallery_names",
           "run_gallery"]

_RHS_SEED = 12345


def _grid2d(nx: int, ny: int, diag: float = 4.0) -> sp.csr_matrix:
    """5-point-stencil grid operator with ``diag`` on the diagonal."""
    n = nx * ny
    rows, cols, vals = [], [], []

    def add(i, j, v):
        rows.append(i)
        cols.append(j)
        vals.append(v)

    for y in range(ny):
        for x in range(nx):
            i = y * nx + x
            add(i, i, diag)
            if x + 1 < nx:
                add(i, i + 1, -1.0)
                add(i + 1, i, -1.0)
            if y + 1 < ny:
                add(i, i + nx, -1.0)
                add(i + nx, i, -1.0)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def _well_conditioned() -> sp.csr_matrix:
    return _grid2d(12, 12)


def _graded() -> sp.csr_matrix:
    # D·A·D with a 10^±3 graded diagonal scaling, shuffled so the
    # grading is not aligned with the elimination order.
    a = _grid2d(10, 10)
    rng = np.random.default_rng(7)
    d = 10.0 ** np.linspace(-3.0, 3.0, a.shape[0])
    rng.shuffle(d)
    return sp.csr_matrix(sp.diags(d) @ a @ sp.diags(d))


def _indefinite_shift() -> sp.csr_matrix:
    # Maxwell-like sign-indefinite shifted operator (curl-curl − σ·M):
    # the shift sits inside the spectrum, so the factorization meets
    # pivots of both signs.
    a = _grid2d(12, 12)
    return sp.csr_matrix(a - 1.37 * sp.eye(a.shape[0]))


def _tiny_scaled() -> sp.csr_matrix:
    # Every entry ~1e-300: pivots are far below any fixed absolute
    # cutoff but healthy relative to max|A|.  Must solve — a detector
    # that false-positives here is thresholding absolutely, not
    # relative to the panel norm.
    return sp.csr_matrix(_grid2d(8, 8) * 1e-300)


def _saddle_point() -> sp.csr_matrix:
    # [[L, B], [Bᵀ, 0]]: nonsingular, but the multiplier variables
    # carry structurally zero diagonal entries.
    nx = ny = 6
    L = _grid2d(nx, ny)
    n = L.shape[0]
    anchors = [0, 7, 21, 35]
    m = len(anchors)
    B = sp.csr_matrix((np.ones(m), (anchors, range(m))), shape=(n, m))
    return sp.csr_matrix(sp.bmat([[L, B], [B.T, None]]))


def _zero_row_col() -> sp.csr_matrix:
    # Exactly singular: one variable's row and column are zeroed.  The
    # front that owns it meets an all-zero pivot column → guaranteed
    # deterministic breakdown.
    a = _grid2d(9, 9).tolil()
    k = 40
    a[k, :] = 0.0
    a[:, k] = 0.0
    return sp.csr_matrix(a)


def _duplicate_rows() -> sp.csr_matrix:
    # Exactly singular: two identical rows.  The dependency cancels to
    # a rounding-level pivot during elimination, so detection needs a
    # relative pivot_tol, not an exact-zero test.
    a = _grid2d(9, 9).tolil()
    a[31, :] = a[30, :]
    return sp.csr_matrix(a)


def _complex_indefinite() -> sp.csr_matrix:
    a = _grid2d(10, 10).astype(np.complex128)
    return sp.csr_matrix(a - (1.2 + 0.3j) * sp.eye(a.shape[0]))


@dataclass(frozen=True)
class GalleryEntry:
    """One pathological system plus its recommended breakdown policy.

    ``kind`` is the contract the validation harness asserts:

    * ``"solvable"`` — must factor cleanly and solve to a small
      backward error with the entry's recommended policy.
    * ``"singular"`` — must raise a typed
      :class:`~repro.errors.FactorizationError`: at factorization
      without static pivoting, or at/after the solve (stagnating
      refinement) with it.  Never NaN/Inf.
    * ``"indefinite"`` — solvable, but exercises sign-indefinite /
      structurally-zero-diagonal pivot blocks.

    ``pivot_tol`` is the relative pivot threshold the harness factors
    with (0 keeps only the exact-zero/subnormal detector).
    """

    name: str
    build: Callable[[], sp.csr_matrix]
    kind: str
    pivot_tol: float = 0.0
    description: str = ""


GALLERY: tuple[GalleryEntry, ...] = (
    GalleryEntry("well_conditioned", _well_conditioned, "solvable",
                 description="5-point grid operator, benign pivots"),
    GalleryEntry("graded", _graded, "solvable",
                 description="10^±3 graded D·A·D scaling, shuffled"),
    GalleryEntry("indefinite_shift", _indefinite_shift, "indefinite",
                 description="Maxwell-like shift inside the spectrum"),
    GalleryEntry("tiny_scaled", _tiny_scaled, "solvable",
                 description="uniform 1e-300 scaling; must not "
                             "false-positive"),
    GalleryEntry("saddle_point", _saddle_point, "indefinite",
                 description="KKT block system with zero diagonal "
                             "multiplier block"),
    GalleryEntry("zero_row_col", _zero_row_col, "singular",
                 description="zeroed row+column: an all-zero pivot "
                             "column in one front"),
    GalleryEntry("duplicate_rows", _duplicate_rows, "singular",
                 pivot_tol=1e-10,
                 description="two identical rows: pivot cancels to "
                             "rounding level"),
    GalleryEntry("complex_indefinite", _complex_indefinite, "indefinite",
                 description="complex shifted operator"),
)


def gallery_names() -> list[str]:
    return [e.name for e in GALLERY]


def gallery_entry(name: str) -> GalleryEntry:
    for e in GALLERY:
        if e.name == name:
            return e
    raise KeyError(f"no gallery entry named {name!r}; "
                   f"choose from {gallery_names()}")


def _rhs(entry: GalleryEntry, n: int) -> np.ndarray:
    # Deterministic per-entry right-hand side, identical across
    # engines/backends so outcomes are directly comparable.  A generic
    # (inconsistent) rhs guarantees singular systems cannot sneak
    # through refinement.
    rng = np.random.default_rng(_RHS_SEED + len(entry.name))
    return rng.standard_normal(n)


def run_gallery(device=None, *, backend: str | None = None,
                engine: str = "bucketed",
                entries=None, static_pivot: bool = False,
                replace_scale: float | None = None,
                refine_steps: int = 2, use_mc64: bool = False) -> dict:
    """Drive every gallery entry through the full pipeline.

    Returns ``{name: record}`` where each record has

    * ``outcome`` — ``"solved"``, ``"factor_breakdown"`` (typed error
      at factorization) or ``"solve_breakdown"`` (typed error at the
      solve: refused factors, non-finite substitution, or stagnating
      escalated refinement),
    * ``berr`` — scaled backward error ``max|b−Ax| /
      (max|A|·max|x| + max|b|)`` when solved (else ``None``),
    * ``residual`` — the solve's final normwise residual
      ``‖b−Ax‖/‖b‖`` when solved,
    * ``report`` — the :class:`FactorReport` (from the factors or the
      raised error), ``None`` only if the error carried none,
    * ``escalated`` — whether refinement auto-escalated,
    * ``error`` — the error message for breakdown outcomes.

    The gallery's acceptance contract: every record either solved with
    a small ``berr`` or carries a typed error — never NaN/Inf.
    """
    from ..sparse import SparseLU

    if backend is None:
        backend = "cpu" if device is None else "batched"
    if entries is None:
        entries = GALLERY
    results: dict[str, dict] = {}
    for entry in entries:
        a = entry.build()
        b = _rhs(entry, a.shape[0])
        rec: dict = {"outcome": None, "berr": None, "report": None,
                     "escalated": False, "error": None,
                     "kind": entry.kind}
        s = SparseLU(a, use_mc64=use_mc64)
        fkw: dict = dict(pivot_tol=entry.pivot_tol,
                         static_pivot=static_pivot)
        if replace_scale is not None:
            fkw["replace_scale"] = replace_scale
        if backend != "cpu":
            fkw["device"] = device
        if backend == "batched":
            fkw["engine"] = engine
        try:
            s.factor(backend=backend, **fkw)
        except FactorizationError as exc:
            rec.update(outcome="factor_breakdown", error=str(exc),
                       report=exc.report)
            results[entry.name] = rec
            continue
        rec["report"] = s.factor_report
        try:
            x, info = s.solve(b, refine_steps=refine_steps,
                              device=device, engine=engine)
        except FactorizationError as exc:
            rec.update(outcome="solve_breakdown", error=str(exc))
            if exc.report is not None:
                rec["report"] = exc.report
            results[entry.name] = rec
            continue
        if not np.all(np.isfinite(x)):  # the pipeline must never allow
            raise AssertionError(        # this past its own checks
                f"gallery entry {entry.name!r} returned non-finite x")
        # Scaled (normwise, inf-norm) backward error: the right metric
        # for graded systems, where residual/||b|| saturates at
        # eps·||A||·||x||/||b||.
        r = float(np.abs(b - a @ x).max())
        denom = float(np.abs(a).max() * np.abs(x).max()
                      + np.abs(b).max())
        rec.update(outcome="solved",
                   berr=r / denom if denom else 0.0,
                   residual=info.final_residual,
                   escalated=info.escalated)
        results[entry.name] = rec
    return results
