"""Traffic generation and virtual-time replay for the solver service.

The serving benchmarks need *arrival processes*, not just batches: the
value of a batching policy (and of tuning one online) only shows against
traffic with temporal structure — steady trickles, bursts, heavy-tailed
size mixes, closed feedback loops.  This module provides both halves:

* **Generators** — :class:`TrafficMix` describes a workload as weighted
  :class:`RequestClass`\\ es (kind, size distribution, per-class soft
  latency SLO) under an arrival process: open-loop ``poisson`` (memoryless
  at a fixed rate), open-loop ``burst`` (a storm-modulated Poisson — long
  quiet valleys, short high-rate storms), or ``closed`` (K clients, each
  submitting, waiting for its result, thinking an exponential time, and
  submitting again — arrival rate adapts to service rate).  Three standard
  mixes (:data:`STANDARD_MIXES`: steady, bursty, heavy-tail) are the
  acceptance surface of ``bench_serve --slo``.
* **Replay** — :func:`run_mix` replays a mix against a fresh
  :class:`~repro.serve.service.SolverService` in *virtual time*: a
  :class:`VirtualClock` is injected as the service clock, arrivals are
  submitted at their generated timestamps (backdated when they land
  inside a dispatch busy period, exactly as a caller thread would have
  enqueued them), groups are collected with the queue's discrete-event
  hooks (:meth:`~repro.serve.scheduler.AdmissionQueue.next_ripe` /
  :meth:`collect_ready`), and the clock advances by each dispatch's
  *simulated* device seconds.  No threads, no sleeps: the same seed
  replays the same decisions, and two runs under different policies see
  byte-identical request payloads — which is what makes the benchmark's
  bitwise parity gate meaningful.

Every request payload is a pure function of ``(mix, seed, request
index)`` — never of the policy, the clock, or what happened to earlier
requests — so a static-policy run and an autotuned run solve the exact
same problems in a possibly different grouping, and their per-request
results must match bit for bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..device.simulator import Device
from ..device.spec import A100, DeviceSpec
from ..serve.service import SolverService
from ..errors import ServiceOverloaded

__all__ = ["RequestClass", "TrafficMix", "VirtualClock", "MixResult",
           "run_mix", "STANDARD_MIXES", "standard_mix"]


@dataclass(frozen=True)
class RequestClass:
    """One class of traffic: what is submitted and how fast it must be.

    ``slo`` is the class's soft latency objective in (virtual) seconds —
    requests carry it into the scheduler (SLO-aware admission caps their
    hold time) and ``bench_serve --slo`` gates the class's measured p99
    against it.  ``sampler`` picks orders ``"uniform"`` on
    ``[order_lo, order_hi]`` or ``"lognormal"`` (heavy tail) with median
    ``order_lo`` clipped to ``order_hi``.
    """

    name: str
    kind: str = "factor_solve"        #: "factor" | "factor_solve"
    order_lo: int = 8
    order_hi: int = 32
    weight: float = 1.0
    slo: float | None = None
    sampler: str = "uniform"
    sigma: float = 0.8                #: lognormal shape (heavy tail)

    def sample_order(self, rng: np.random.Generator) -> int:
        if self.sampler == "lognormal":
            o = int(round(self.order_lo *
                          np.exp(rng.normal(0.0, self.sigma))))
            return int(np.clip(o, 2, self.order_hi))
        return int(rng.integers(self.order_lo, self.order_hi + 1))


@dataclass(frozen=True)
class TrafficMix:
    """A complete workload: classes + arrival process + volume.

    ``arrival``: ``"poisson"`` (open loop, ``rate``/s), ``"burst"``
    (open loop; storms of ``rate × burst_factor`` lasting ``storm_len``
    seconds every ``burst_period`` seconds, valleys at ``rate``), or
    ``"closed"`` (``clients`` concurrent callers with exponential
    ``think_time``; ``rate`` is ignored).
    """

    name: str
    classes: tuple
    count: int = 200
    arrival: str = "poisson"
    rate: float = 2000.0
    burst_factor: float = 20.0
    burst_period: float = 5e-2
    storm_len: float = 5e-3
    clients: int = 16
    think_time: float = 2e-3

    def pick_class(self, rng: np.random.Generator) -> RequestClass:
        w = np.array([c.weight for c in self.classes], dtype=float)
        return self.classes[rng.choice(len(self.classes), p=w / w.sum())]

    def arrival_times(self, rng: np.random.Generator) -> list[float]:
        """Open-loop arrival timestamps (``closed`` mixes schedule
        arrivals from completions inside the replay loop instead)."""
        if self.arrival == "poisson":
            return list(np.cumsum(rng.exponential(1.0 / self.rate,
                                                  size=self.count)))
        if self.arrival == "burst":
            t, out = 0.0, []
            storm_rate = self.rate * self.burst_factor
            while len(out) < self.count:
                in_storm = (t % self.burst_period) < self.storm_len
                t += rng.exponential(
                    1.0 / (storm_rate if in_storm else self.rate))
                out.append(t)
            return out
        raise ValueError(f"unknown arrival process {self.arrival!r} "
                         f"(closed mixes do not pregenerate arrivals)")


def _payload(mix: TrafficMix, seed: int, index: int
             ) -> tuple[RequestClass, np.ndarray, np.ndarray]:
    """Request ``index``'s class, matrix and rhs — a pure function of
    ``(mix, seed, index)`` so every replay of the mix, under any policy,
    submits byte-identical problems."""
    rng = np.random.default_rng((seed, index))
    cls = mix.pick_class(rng)
    n = cls.sample_order(rng)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)                # diagonally dominant: no breakdown
    b = rng.standard_normal(n)
    return cls, a, b


class VirtualClock:
    """A monotonic-by-convention callable clock the replay loop owns.

    Injected as the service/queue/request clock; the loop sets
    :attr:`now` to event times and advances it by each dispatch's
    simulated duration.  (The loop briefly rewinds it to backdate a
    submission that arrived during a busy period — the one consumer of
    the clock during a submit is ``Request.t_submit``.)
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += max(float(dt), 0.0)


@dataclass
class MixResult:
    """One replayed mix: per-request outcomes + per-class SLO report.

    ``results[i]`` is request ``i``'s solution vector (``factor_solve``)
    or packed LU (``factor``); ``None`` marks a rejected request.
    ``makespan`` is virtual seconds from first arrival to last
    completion; ``throughput`` is completed requests per makespan
    second.  ``per_class[name]`` carries ``count/p50/p99/slo/met``.
    """

    name: str
    results: list = field(default_factory=list)
    latencies: list = field(default_factory=list)
    classes: list = field(default_factory=list)
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    makespan: float = 0.0
    dispatches: int = 0
    stats: dict = field(default_factory=dict)
    tuner: dict | None = None
    policy: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.completed / self.makespan if self.makespan else 0.0

    @property
    def per_class(self) -> dict:
        out: dict = {}
        for name in {c.name for c in self.classes}:
            cls = next(c for c in self.classes if c.name == name)
            lats = [l for l, c in zip(self.latencies, self.classes)
                    if c.name == name and l is not None]
            entry = {"count": len(lats), "slo": cls.slo}
            if lats:
                entry["p50"] = float(np.percentile(lats, 50))
                entry["p99"] = float(np.percentile(lats, 99))
                entry["met"] = (cls.slo is None
                                or entry["p99"] <= cls.slo)
            else:
                entry.update(p50=0.0, p99=0.0, met=True)
            out[name] = entry
        return out

    def slo_met(self) -> bool:
        return all(e["met"] for e in self.per_class.values())


def run_mix(mix: TrafficMix, *, policy=None, spec: DeviceSpec | None = None,
            autotuner=None, tune_every: float = 2e-2,
            seed: int = 0) -> MixResult:
    """Replay ``mix`` against a fresh service in virtual time.

    ``policy`` seeds the service (default :class:`CoalescingPolicy`);
    ``autotuner`` is an optional callable ``service, clock ->
    OnlineAutotuner`` — when given, its ``step()`` runs every
    ``tune_every`` virtual seconds, hot-swapping the policy mid-replay.
    Deterministic: same arguments, same decisions, same bits.
    """
    clock = VirtualClock()
    device = Device(spec or A100())
    svc = SolverService(device, policy=policy, start=False, clock=clock)
    tuner = autotuner(svc, clock) if autotuner is not None else None

    # -- request stream -------------------------------------------------
    rng = np.random.default_rng(seed)
    n_req = mix.count
    res = MixResult(name=mix.name, results=[None] * n_req,
                    latencies=[None] * n_req,
                    classes=[_payload(mix, seed, i)[0]
                             for i in range(n_req)])
    # (t_arrival, index) heap; closed-loop pushes from completions
    events: list[tuple[float, int]] = []
    closed = mix.arrival == "closed"
    client_of: dict[int, int] = {}
    if closed:
        next_index = 0
        for c in range(min(mix.clients, n_req)):
            heapq.heappush(events, (rng.exponential(mix.think_time),
                                    next_index))
            client_of[next_index] = c
            next_index += 1
    else:
        for i, t in enumerate(mix.arrival_times(rng)):
            heapq.heappush(events, (t, i))

    outstanding: dict[int, object] = {}   # index -> future
    first_arrival = events[0][0] if events else 0.0
    last_tune = 0.0

    def submit(i: int, t_arr: float) -> None:
        cls, a, b = _payload(mix, seed, i)
        saved = clock.now
        clock.now = t_arr          # backdate: arrivals during a busy
        try:                       # period still queue at arrival time
            if cls.kind == "factor":
                fut = svc.submit_factor(a, slo=cls.slo)
            else:
                fut = svc.submit_factor_solve(a, b, slo=cls.slo)
            outstanding[i] = fut
        except ServiceOverloaded:
            res.rejected += 1
        finally:
            clock.now = max(saved, t_arr)

    def harvest() -> None:
        """Record completions (latency ends when the dispatch that
        resolved the request finishes, i.e. at the current clock)."""
        done = [i for i, f in outstanding.items() if f.done()]
        for i in done:
            fut = outstanding.pop(i)
            err = fut.exception()
            if err is not None:
                res.failed += 1
            else:
                value = fut.result()
                res.results[i] = (value[0] if isinstance(value, tuple)
                                  else value.lu)
                res.completed += 1
            res.latencies[i] = clock.now - arrival_t[i]
            if closed and next_holder[0] < n_req:
                j = next_holder[0]
                next_holder[0] += 1
                client_of[j] = client_of[i]
                t_next = clock.now + rng.exponential(mix.think_time)
                heapq.heappush(events, (t_next, j))

    arrival_t: dict[int, float] = {}
    next_holder = [len(client_of)] if closed else [n_req]

    # -- discrete-event loop -------------------------------------------
    while events or len(svc._queue):
        policy_now = svc.policy
        if events and events[0][0] <= clock.now:
            t_arr, i = heapq.heappop(events)
            arrival_t[i] = t_arr
            submit(i, t_arr)
            continue
        ripe_t = svc._queue.next_ripe(policy_now, clock.now)
        next_a = events[0][0] if events else None
        if ripe_t is None:
            if next_a is None:
                break
            clock.now = next_a
            continue
        if next_a is not None and next_a < ripe_t:
            clock.now = next_a
            continue
        clock.now = max(clock.now, ripe_t)
        group = svc._queue.collect_ready(policy_now, clock.now)
        if group is not None:
            record = svc._safe_dispatch(group, policy_now)
            clock.advance(record.sim_seconds)
            res.dispatches += 1
            harvest()
        else:
            # float rounding can leave (now - t_submit) one ulp short
            # of the hold budget next_ripe promised; nudge past it
            clock.advance(1e-9)
        if tuner is not None and clock.now - last_tune >= tune_every:
            tuner.step()
            last_tune = clock.now

    harvest()
    res.makespan = max(clock.now - first_arrival, 0.0)
    res.stats = svc.stats.snapshot()
    res.policy = svc.policy.describe()
    if tuner is not None:
        res.tuner = tuner.summary()
    svc.close()
    return res


#: The three acceptance traffic mixes of ``bench_serve --slo`` plus the
#: closed-loop feedback mix.  Rates/SLOs are calibrated to the simulated
#: device's cost model: steady fills groups by arrival, bursty stresses
#: the hold budget, heavy-tail stresses group composition, closed-loop
#: couples arrivals to service rate.
STANDARD_MIXES: dict[str, TrafficMix] = {
    "steady": TrafficMix(
        name="steady", count=240, arrival="poisson", rate=2000.0,
        classes=(
            RequestClass("small-solve", "factor_solve", 8, 32,
                         weight=0.7, slo=2e-2),
            RequestClass("medium-factor", "factor", 32, 64,
                         weight=0.3, slo=5e-2),
        )),
    "bursty": TrafficMix(
        name="bursty", count=240, arrival="burst", rate=400.0,
        burst_factor=25.0, burst_period=5e-2, storm_len=5e-3,
        classes=(
            RequestClass("interactive", "factor_solve", 8, 24,
                         weight=0.8, slo=2e-2),
            RequestClass("background", "factor", 48, 80,
                         weight=0.2, slo=1e-1),
        )),
    "heavy-tail": TrafficMix(
        name="heavy-tail", count=200, arrival="poisson", rate=1500.0,
        classes=(
            RequestClass("tail", "factor_solve", 16, 96,
                         weight=1.0, slo=4e-2, sampler="lognormal"),
        )),
    "closed-loop": TrafficMix(
        name="closed-loop", count=192, arrival="closed", clients=16,
        think_time=2e-3,
        classes=(
            RequestClass("client", "factor_solve", 8, 40,
                         weight=1.0, slo=3e-2),
        )),
}


def standard_mix(name: str) -> TrafficMix:
    try:
        return STANDARD_MIXES[name]
    except KeyError:
        raise ValueError(f"unknown traffic mix {name!r}; choose from "
                         f"{sorted(STANDARD_MIXES)}") from None
