"""Workload generators for microbenchmarks and the application study."""

from .fronts import MaxwellWorkload, build_maxwell_workload, \
    level_front_dims, synthetic_front_batch
from .gallery import GALLERY, GalleryEntry, gallery_entry, gallery_names, \
    run_gallery
from .random_batch import large_square_batch, panel_batch, \
    random_square_batch, triangular_batch, uniform_random_sizes
from .traffic import MixResult, RequestClass, STANDARD_MIXES, TrafficMix, \
    VirtualClock, run_mix, standard_mix

__all__ = [
    "uniform_random_sizes", "random_square_batch", "large_square_batch",
    "triangular_batch", "panel_batch",
    "MaxwellWorkload", "build_maxwell_workload", "level_front_dims",
    "synthetic_front_batch",
    "GalleryEntry", "GALLERY", "gallery_entry", "gallery_names",
    "run_gallery",
    "RequestClass", "TrafficMix", "VirtualClock", "MixResult",
    "run_mix", "STANDARD_MIXES", "standard_mix",
]
