"""Workload generators for microbenchmarks and the application study."""

from .fronts import MaxwellWorkload, build_maxwell_workload, \
    level_front_dims, synthetic_front_batch
from .gallery import GALLERY, GalleryEntry, gallery_entry, gallery_names, \
    run_gallery
from .random_batch import large_square_batch, panel_batch, \
    random_square_batch, triangular_batch, uniform_random_sizes

__all__ = [
    "uniform_random_sizes", "random_square_batch", "large_square_batch",
    "triangular_batch", "panel_batch",
    "MaxwellWorkload", "build_maxwell_workload", "level_front_dims",
    "synthetic_front_batch",
    "GalleryEntry", "GALLERY", "gallery_entry", "gallery_names",
    "run_gallery",
]
