"""Application workloads: the Maxwell system and its front batches.

Builds the §V-B problem (indefinite Maxwell on a hex mesh) and extracts
the per-level front-size batches its assembly tree produces — the
workload that drives Figs 13/14 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..fem.maxwell import MaxwellProblem
from ..fem.mesh import HexMesh, torus_map
from ..sparse.ordering.nested_dissection import nested_dissection
from ..sparse.symbolic.analysis import SymbolicFactorization, \
    symbolic_analysis

__all__ = ["MaxwellWorkload", "build_maxwell_workload", "level_front_dims",
           "synthetic_front_batch"]


@dataclass
class MaxwellWorkload:
    """The assembled, analyzed Maxwell system ready for factorization."""

    problem: MaxwellProblem
    matrix: sp.csr_matrix          # reduced (interior) system
    rhs: np.ndarray
    perm: np.ndarray
    a_perm: sp.csr_matrix
    symb: SymbolicFactorization


def build_maxwell_workload(n: int = 10, *, omega: float = 16.0,
                           torus: bool = False,
                           leaf_size: int = 32) -> MaxwellWorkload:
    """Assemble + analyze the paper's Maxwell problem at mesh size ``n``.

    ``torus=True`` uses the paper's toroidal geometry (periodic hex
    mesh); the default box keeps the same operator on a simpler domain.
    """
    if torus:
        mesh = HexMesh(2 * n, n, n, periodic_x=True, mapping=torus_map())
    else:
        mesh = HexMesh(n, n, n)
    prob = MaxwellProblem.build(mesh, omega=omega)
    a, b = prob.reduced_system()
    nd = nested_dissection(a, leaf_size=leaf_size)
    a_perm = a[nd.perm][:, nd.perm].tocsr()
    symb = symbolic_analysis(a_perm, nd)
    return MaxwellWorkload(problem=prob, matrix=a, rhs=b, perm=nd.perm,
                           a_perm=a_perm, symb=symb)


def level_front_dims(symb: SymbolicFactorization
                     ) -> list[list[tuple[int, int]]]:
    """Per level (deepest first), the (sep, upd) dims of every front."""
    return [[(symb.fronts[f].sep_size, symb.fronts[f].upd_size)
             for f in fids]
            for fids in symb.levels()]


def synthetic_front_batch(dims: list[tuple[int, int]], *, seed: int = 0
                          ) -> list[np.ndarray]:
    """Random dense fronts with the given (sep, upd) dimensions.

    Diagonally shifted so the pivot blocks are well conditioned — the
    microbenchmark isolates kernel performance, not pivot growth.
    """
    rng = np.random.default_rng(seed)
    out = []
    for s, u in dims:
        nf = s + u
        f = rng.standard_normal((nf, nf))
        f[:s, :s] += 2.0 * max(s, 1) * np.eye(s)
        out.append(f)
    return out
