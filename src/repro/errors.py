"""Typed exceptions for the robustness layer (numerical and system).

Numerical failures
------------------
:class:`FactorizationError` is the single failure type the pipeline
raises when an LU factorization breaks down (a pivot below the
breakdown threshold that static pivoting did not, or could not,
recover) or when a solve cannot reach its accuracy target from a
perturbed factorization.  It subclasses :class:`numpy.linalg.LinAlgError`
so existing ``except LinAlgError`` call sites keep working, and carries
the per-front :class:`~repro.sparse.numeric.report.FactorReport` (when
one exists) so callers can see *which* fronts failed and why.

:class:`PrecisionFallback` is the mixed-precision specialization: a
reduced-precision (FP32/complex64) factorization could not deliver the
FP64 refinement target and the automatic re-factorization in full
precision was disabled.  It subclasses :class:`FactorizationError` and
records the backward error actually achieved next to the target, so a
caller can decide whether the cheap answer was good enough after all.

System failures
---------------
The device pipeline can also fail for non-numerical reasons — a transfer
that keeps arriving corrupted, a kernel launch the runtime rejects, or a
recovery ladder (retry → split → shrink → spill → host fallback) that
runs out of options.  These raise :class:`TransferError`,
:class:`KernelLaunchError` and :class:`ResourceExhausted` respectively;
never a bare :class:`MemoryError` and never silent garbage.  Each error
carries enough context (site, attempt count, the
:class:`~repro.recovery.RecoveryLog` of actions already taken) for a
caller to decide whether to re-run, re-budget, or re-host the work.

Service failures
----------------
The serving layer (:mod:`repro.serve`) rejects and expires work with its
own typed errors so callers can distinguish "the solver broke" from "the
service would not take the job": :class:`ServiceOverloaded` (admission
queue full — back off and retry), :class:`DeadlineExceeded` (the request
waited past its deadline and was dropped before dispatch) and
:class:`RequestCancelled` (the caller cancelled a queued request).  None
of them subclass :class:`numpy.linalg.LinAlgError`: they carry no
numerical meaning.

Silent-data-corruption defense
------------------------------
A kernel that *completes* but computes wrong bytes is invisible to the
launch/transfer error types above.  The ABFT layer
(:mod:`repro.batched.abft`) checks checksum invariants after each
verified launch group and raises :class:`CorruptionDetected` when the
bounded re-execution budget cannot repair a mismatch.
:class:`ServiceDegraded` is the serving-layer counterpart: the health
monitor's circuit breaker opened on a sustained fault storm and the
service is running on a degraded dispatch path; it is surfaced through
``ServiceStats.snapshot()`` rather than raised at callers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FactorizationError", "PrecisionFallback", "TransferError",
           "KernelLaunchError", "ResourceExhausted", "CorruptionDetected",
           "ServiceOverloaded", "DeadlineExceeded", "RequestCancelled",
           "ServiceDegraded", "InfeasibleConfig"]


class FactorizationError(np.linalg.LinAlgError):
    """An LU factorization broke down, or refinement could not recover.

    Attributes
    ----------
    report:
        The :class:`~repro.sparse.numeric.report.FactorReport` describing
        per-front breakdown diagnostics, or ``None`` when the error was
        raised below the sparse layer (e.g. by a batched kernel).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class PrecisionFallback(FactorizationError):
    """A reduced-precision factorization could not reach the FP64 target.

    Raised only when the automatic FP64 re-factorization is disabled
    (``precision_fallback=False``); with the default behavior the solver
    re-factors in full precision instead and records a
    ``precision-fallback`` action in the
    :class:`~repro.recovery.RecoveryLog`.

    Attributes
    ----------
    achieved:
        Backward error the reduced-precision path reached (after
        refinement and the GMRES-IR escalation), ``nan`` when the
        factorization itself failed before any solve.
    target:
        The backward-error target that was missed
        (:data:`~repro.sparse.solver.REFINE_TARGET` for solves).
    """

    def __init__(self, message: str, report=None, *,
                 achieved: float = float("nan"),
                 target: float = float("nan")):
        super().__init__(message, report)
        self.achieved = achieved
        self.target = target


class TransferError(RuntimeError):
    """A host<->device transfer failed integrity verification N times.

    Raised by the checksummed transfer paths in
    :mod:`repro.device.memory` once the bounded retry budget is spent —
    a transfer that keeps arriving corrupted is a persistent fault the
    device layer cannot repair.

    Attributes
    ----------
    site:
        Label of the failing transfer (e.g. ``"copy_from_host"``).
    direction:
        ``"h2d"`` or ``"d2h"``.
    attempts:
        Number of transfer attempts made before giving up.
    """

    def __init__(self, site: str, direction: str, attempts: int):
        super().__init__(
            f"{direction} transfer at {site!r} failed checksum "
            f"verification after {attempts} attempt(s)")
        self.site = site
        self.direction = direction
        self.attempts = attempts


class KernelLaunchError(RuntimeError):
    """The device runtime rejected a kernel launch.

    Injected by the fault layer *before* the kernel's numerics run, so a
    caller that catches this error can retry the launch (or the enclosing
    level transaction) from unchanged inputs.

    Attributes
    ----------
    kernel:
        Name of the rejected kernel.
    """

    def __init__(self, kernel: str, detail: str = ""):
        msg = f"kernel launch failed: {kernel!r}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.kernel = kernel


class ResourceExhausted(RuntimeError):
    """Every bounded recovery option for a device operation was spent.

    This is the terminal error of the resource-recovery ladder: level
    retries, sub-batch splits, out-of-core chunk shrinking, cache
    eviction and (when enabled) the host fallback all failed or were
    unavailable.  The original device error is chained as ``__cause__``
    and the :class:`~repro.recovery.RecoveryLog` of every action taken
    along the way is attached as ``log``.
    """

    def __init__(self, message: str, log=None):
        super().__init__(message)
        self.log = log


class CorruptionDetected(RuntimeError):
    """ABFT verification caught a corrupted kernel output it cannot repair.

    Raised by the checksum-verified batched kernels
    (:mod:`repro.batched.abft`) and the compiled replay path after the
    bounded re-execution budget (``kernel-reexec`` rungs in the
    :class:`~repro.recovery.RecoveryLog`) is spent on a checksum
    mismatch that keeps coming back — a persistently corrupting device.
    The launch's numerics completed, so unlike
    :class:`KernelLaunchError` the output buffers hold *wrong bytes*;
    callers must re-stage inputs before any retry of their own.

    Attributes
    ----------
    site:
        Name of the kernel launch (or program) whose output failed
        verification.
    batch_index:
        Index of the first offending matrix within the launch's batch
        (``-1`` when the mismatch cannot be pinned to one member).
    """

    def __init__(self, site: str, batch_index: int = -1, detail: str = ""):
        msg = (f"silent data corruption detected at {site!r}"
               f" (batch index {batch_index})")
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.site = site
        self.batch_index = batch_index


class ServiceOverloaded(RuntimeError):
    """The solver service's bounded admission queue is full.

    This is backpressure, not failure: the submitted work was *not*
    enqueued and the caller should retry later (or shed load).  Raised
    synchronously by ``submit_*`` — an overloaded service never accepts
    a request it cannot hold.

    Attributes
    ----------
    queue_depth:
        Number of requests pending when the submission was rejected.
    max_queue:
        The admission queue bound in force.
    """

    def __init__(self, queue_depth: int, max_queue: int):
        super().__init__(
            f"service overloaded: admission queue holds {queue_depth} "
            f"request(s) (bound {max_queue}); retry later")
        self.queue_depth = queue_depth
        self.max_queue = max_queue


class DeadlineExceeded(RuntimeError):
    """A queued request's deadline expired before it was dispatched.

    The scheduler drops expired requests at collection time instead of
    spending device time on answers nobody is waiting for.

    Attributes
    ----------
    deadline:
        The relative deadline the request was submitted with (seconds).
    waited:
        How long the request actually sat in the queue (seconds).
    """

    def __init__(self, deadline: float, waited: float):
        super().__init__(
            f"request deadline of {deadline:.4g}s exceeded after waiting "
            f"{waited:.4g}s in the admission queue")
        self.deadline = deadline
        self.waited = waited


class RequestCancelled(RuntimeError):
    """The caller cancelled a queued request before it was dispatched.

    Raised by ``result()``/``exception()`` on a future whose
    ``cancel()`` succeeded; a request already running cannot be
    cancelled.
    """


class ServiceDegraded(RuntimeError):
    """The service circuit breaker opened on a sustained fault storm.

    Never raised at request callers — requests keep completing on the
    degraded dispatch ladder (compiled → bucketed → host fallback).
    The instance is surfaced through ``ServiceStats.snapshot()``
    (``breaker_state`` / ``degraded_reason``) so operators and the
    online autotuner can observe *why* the fast path is off.

    Attributes
    ----------
    state:
        Breaker state when the degradation was declared (``"open"`` or
        ``"half-open"``).
    fault_rate:
        Rolling per-dispatch fault rate that tripped the breaker.
    """

    def __init__(self, state: str, fault_rate: float, detail: str = ""):
        msg = (f"service degraded: circuit breaker {state} at "
               f"{fault_rate:.3g} fault event(s)/dispatch")
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.state = state
        self.fault_rate = fault_rate


class InfeasibleConfig(ValueError):
    """A kernel configuration cannot run on this device/batch at all.

    Raised when a *forced* configuration violates a hard device limit —
    e.g. ``panel="fused"`` on a panel that does not fit the per-block
    shared memory.  Subclasses :class:`ValueError` for backward
    compatibility, but gives tuners a way to tell "this candidate can
    never work here" apart from an argument-validation bug: the
    autotuner skips :class:`InfeasibleConfig` candidates and propagates
    every other :class:`ValueError`.
    """
