"""Typed exceptions for the robustness layer (numerical and system).

Numerical failures
------------------
:class:`FactorizationError` is the single failure type the pipeline
raises when an LU factorization breaks down (a pivot below the
breakdown threshold that static pivoting did not, or could not,
recover) or when a solve cannot reach its accuracy target from a
perturbed factorization.  It subclasses :class:`numpy.linalg.LinAlgError`
so existing ``except LinAlgError`` call sites keep working, and carries
the per-front :class:`~repro.sparse.numeric.report.FactorReport` (when
one exists) so callers can see *which* fronts failed and why.

System failures
---------------
The device pipeline can also fail for non-numerical reasons — a transfer
that keeps arriving corrupted, a kernel launch the runtime rejects, or a
recovery ladder (retry → split → shrink → spill → host fallback) that
runs out of options.  These raise :class:`TransferError`,
:class:`KernelLaunchError` and :class:`ResourceExhausted` respectively;
never a bare :class:`MemoryError` and never silent garbage.  Each error
carries enough context (site, attempt count, the
:class:`~repro.recovery.RecoveryLog` of actions already taken) for a
caller to decide whether to re-run, re-budget, or re-host the work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FactorizationError", "TransferError", "KernelLaunchError",
           "ResourceExhausted"]


class FactorizationError(np.linalg.LinAlgError):
    """An LU factorization broke down, or refinement could not recover.

    Attributes
    ----------
    report:
        The :class:`~repro.sparse.numeric.report.FactorReport` describing
        per-front breakdown diagnostics, or ``None`` when the error was
        raised below the sparse layer (e.g. by a batched kernel).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class TransferError(RuntimeError):
    """A host<->device transfer failed integrity verification N times.

    Raised by the checksummed transfer paths in
    :mod:`repro.device.memory` once the bounded retry budget is spent —
    a transfer that keeps arriving corrupted is a persistent fault the
    device layer cannot repair.

    Attributes
    ----------
    site:
        Label of the failing transfer (e.g. ``"copy_from_host"``).
    direction:
        ``"h2d"`` or ``"d2h"``.
    attempts:
        Number of transfer attempts made before giving up.
    """

    def __init__(self, site: str, direction: str, attempts: int):
        super().__init__(
            f"{direction} transfer at {site!r} failed checksum "
            f"verification after {attempts} attempt(s)")
        self.site = site
        self.direction = direction
        self.attempts = attempts


class KernelLaunchError(RuntimeError):
    """The device runtime rejected a kernel launch.

    Injected by the fault layer *before* the kernel's numerics run, so a
    caller that catches this error can retry the launch (or the enclosing
    level transaction) from unchanged inputs.

    Attributes
    ----------
    kernel:
        Name of the rejected kernel.
    """

    def __init__(self, kernel: str, detail: str = ""):
        msg = f"kernel launch failed: {kernel!r}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.kernel = kernel


class ResourceExhausted(RuntimeError):
    """Every bounded recovery option for a device operation was spent.

    This is the terminal error of the resource-recovery ladder: level
    retries, sub-batch splits, out-of-core chunk shrinking, cache
    eviction and (when enabled) the host fallback all failed or were
    unavailable.  The original device error is chained as ``__cause__``
    and the :class:`~repro.recovery.RecoveryLog` of every action taken
    along the way is attached as ``log``.
    """

    def __init__(self, message: str, log=None):
        super().__init__(message)
        self.log = log
