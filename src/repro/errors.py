"""Typed exceptions for the numerical-robustness layer.

:class:`FactorizationError` is the single failure type the pipeline
raises when an LU factorization breaks down (a pivot below the
breakdown threshold that static pivoting did not, or could not,
recover) or when a solve cannot reach its accuracy target from a
perturbed factorization.  It subclasses :class:`numpy.linalg.LinAlgError`
so existing ``except LinAlgError`` call sites keep working, and carries
the per-front :class:`~repro.sparse.numeric.report.FactorReport` (when
one exists) so callers can see *which* fronts failed and why.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FactorizationError"]


class FactorizationError(np.linalg.LinAlgError):
    """An LU factorization broke down, or refinement could not recover.

    Attributes
    ----------
    report:
        The :class:`~repro.sparse.numeric.report.FactorReport` describing
        per-front breakdown diagnostics, or ``None`` when the error was
        raised below the sparse layer (e.g. by a batched kernel).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
