"""Tensor-product Gauss–Legendre quadrature on the reference cube."""

from __future__ import annotations

import numpy as np

__all__ = ["gauss_legendre_1d", "cube_rule", "segment_rule"]


def gauss_legendre_1d(npts: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre points/weights on [0, 1]."""
    if npts < 1:
        raise ValueError("need at least one point")
    x, w = np.polynomial.legendre.leggauss(npts)
    return 0.5 * (x + 1.0), 0.5 * w


def cube_rule(npts: int) -> tuple[np.ndarray, np.ndarray]:
    """Tensor rule on [0,1]³: returns (points (nq, 3), weights (nq,))."""
    x, w = gauss_legendre_1d(npts)
    pts = np.array([(a, b, c) for c in x for b in x for a in x])
    wts = np.array([wa * wb * wc for wc in w for wb in w for wa in w])
    return pts, wts


def segment_rule(npts: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss rule on a reference segment [0, 1] (for edge dofs/BCs)."""
    return gauss_legendre_1d(npts)
