"""Finite element substrate: hex meshes, Nédélec elements, Maxwell."""

from .maxwell import MaxwellProblem, assemble_curlcurl_mass, \
    edge_dofs_of_field, field_F
from .mesh import HexMesh, box_map, torus_map
from .nedelec import element_matrices, geometry_jacobians, \
    reference_basis, reference_curl
from .quadrature import cube_rule, gauss_legendre_1d, segment_rule

__all__ = [
    "HexMesh", "box_map", "torus_map",
    "reference_basis", "reference_curl", "element_matrices",
    "geometry_jacobians", "cube_rule", "segment_rule", "gauss_legendre_1d",
    "MaxwellProblem", "assemble_curlcurl_mass", "field_F",
    "edge_dofs_of_field",
]
