"""Structured hexahedral meshes with curved mappings (MFEM substitute).

The paper's application discretizes a toroidal geometry with hexahedral
finite elements.  We build structured hex meshes of the unit cube with an
optional smooth coordinate mapping (including the torus map, with
periodic identification in the toroidal direction), which supplies the
same element machinery — trilinear geometry, per-element Jacobians — that
an unstructured mesh exercises.

Edge conventions: every global edge points in the +x/+y/+z reference
direction, so edge orientations are globally consistent and no sign flips
enter the Nédélec assembly (wrap-around edges of the periodic direction
included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["HexMesh", "torus_map", "box_map"]

Mapping = Callable[[np.ndarray], np.ndarray]


def box_map(points: np.ndarray) -> np.ndarray:
    """Identity mapping: the unit cube itself."""
    return np.asarray(points, dtype=np.float64)


def torus_map(major_radius: float = 2.0, width: float = 1.0,
              height: float = 1.0) -> Mapping:
    """Map the unit cube to a torus segment: ``x`` is the toroidal angle,
    ``(y, z)`` the rectangular cross-section.  Combine with
    ``periodic_x=True`` for the full torus."""

    def mapping(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        # clockwise angle keeps the map orientation-preserving (det J > 0)
        theta = -2.0 * np.pi * p[..., 0]
        r = major_radius + width * (p[..., 1] - 0.5)
        out = np.empty_like(p)
        out[..., 0] = r * np.cos(theta)
        out[..., 1] = r * np.sin(theta)
        out[..., 2] = height * (p[..., 2] - 0.5)
        return out

    return mapping


@dataclass(frozen=True)
class _EdgeTables:
    edges: np.ndarray        # (nedges, 2) vertex ids
    cell_edges: np.ndarray   # (ncells, 12) edge ids
    boundary: np.ndarray     # bool mask over edges


class HexMesh:
    """A structured ``nx × ny × nz`` hexahedral mesh.

    Local orderings (reference cube ``[0,1]³``):

    * vertices: ``(i, j, k)`` corners in lexicographic x-fastest order,
      i.e. vertex ``v = i + 2j + 4k`` for offsets ``i, j, k ∈ {0, 1}``;
    * edges: 4 x-edges (at ``(y,z) ∈ {0,1}²``), then 4 y-edges (at
      ``(x,z)``), then 4 z-edges (at ``(x,y)``), each set in
      lexicographic order of its transverse coordinates.
    """

    #: local edge -> (corner pair) with the conventions above
    LOCAL_EDGES = np.array([
        # x-edges: (y, z) = (0,0), (1,0), (0,1), (1,1)
        (0, 1), (2, 3), (4, 5), (6, 7),
        # y-edges: (x, z) = (0,0), (1,0), (0,1), (1,1)
        (0, 2), (1, 3), (4, 6), (5, 7),
        # z-edges: (x, y) = (0,0), (1,0), (0,1), (1,1)
        (0, 4), (1, 5), (2, 6), (3, 7),
    ], dtype=np.int64)

    def __init__(self, nx: int, ny: int, nz: int, *,
                 periodic_x: bool = False,
                 mapping: Mapping | None = None):
        if min(nx, ny, nz) < 1:
            raise ValueError("need at least one cell per direction")
        if periodic_x and nx < 3:
            raise ValueError("periodic direction needs at least 3 cells")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.periodic_x = periodic_x
        self.mapping = mapping or box_map

        self._nvx = nx if periodic_x else nx + 1
        self.n_vertices = self._nvx * (ny + 1) * (nz + 1)
        self.n_cells = nx * ny * nz
        self._build_vertices()
        self._tables = self._build_edges()

    # -- indexing ---------------------------------------------------------
    def vertex_id(self, i: int, j: int, k: int) -> int:
        if self.periodic_x:
            i = i % self.nx
        return (k * (self.ny + 1) + j) * self._nvx + i

    def _build_vertices(self) -> None:
        nvx = self._nvx
        ii = np.arange(nvx)
        jj = np.arange(self.ny + 1)
        kk = np.arange(self.nz + 1)
        K, J, I = np.meshgrid(kk, jj, ii, indexing="ij")
        ref = np.stack([I.ravel() / self.nx, J.ravel() / self.ny,
                        K.ravel() / self.nz], axis=1)
        self.ref_vertices = ref
        self.vertices = self.mapping(ref)

    def cell_vertex_ids(self) -> np.ndarray:
        """(ncells, 8) global vertex ids in the local corner order."""
        out = np.empty((self.n_cells, 8), dtype=np.int64)
        c = 0
        for k in range(self.nz):
            for j in range(self.ny):
                for i in range(self.nx):
                    for v, (di, dj, dk) in enumerate(
                            [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
                             (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1)]):
                        out[c, v] = self.vertex_id(i + di, j + dj, k + dk)
                    c += 1
        return out

    def _build_edges(self) -> _EdgeTables:
        """Global edge numbering + per-cell edge ids + boundary mask."""
        edge_ids: dict[tuple[int, int], int] = {}
        edges: list[tuple[int, int]] = []

        def get(v0: int, v1: int) -> int:
            key = (v0, v1)
            eid = edge_ids.get(key)
            if eid is None:
                eid = len(edges)
                edge_ids[key] = eid
                edges.append(key)
            return eid

        cv = self.cell_vertex_ids()
        cell_edges = np.empty((self.n_cells, 12), dtype=np.int64)
        for c in range(self.n_cells):
            for e, (a, b) in enumerate(self.LOCAL_EDGES):
                cell_edges[c, e] = get(int(cv[c, a]), int(cv[c, b]))

        edges_arr = np.array(edges, dtype=np.int64)

        # Boundary edges: edges lying on a non-periodic outer face.
        # Count cell incidence per (face-transverse) position instead of
        # geometry: an edge on the domain boundary belongs to fewer than
        # 4 cells (interior edges of a hex mesh touch exactly 4 cells,
        # modulo the periodic direction).
        counts = np.zeros(len(edges_arr), dtype=np.int64)
        for c in range(self.n_cells):
            counts[cell_edges[c]] += 1
        boundary = counts < 4
        return _EdgeTables(edges=edges_arr, cell_edges=cell_edges,
                           boundary=boundary)

    # -- public surface -----------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self._tables.edges)

    @property
    def edges(self) -> np.ndarray:
        """(nedges, 2) vertex ids; each edge points in + direction."""
        return self._tables.edges

    @property
    def cell_edges(self) -> np.ndarray:
        """(ncells, 12) edge ids in the local Nédélec ordering."""
        return self._tables.cell_edges

    @property
    def boundary_edges(self) -> np.ndarray:
        """Boolean mask of edges on the (non-periodic) domain boundary."""
        return self._tables.boundary

    def cell_vertex_coords(self) -> np.ndarray:
        """(ncells, 8, 3) physical corner coordinates.

        Corners are mapped from each cell's *own* reference coordinates
        (not the shared vertex table) so that wrap-around cells of a
        periodic mapping see a monotone coordinate across the seam —
        identified vertices still coincide physically because the mapping
        is periodic.
        """
        ref = np.empty((self.n_cells, 8, 3))
        c = 0
        offs = [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
                (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1)]
        for k in range(self.nz):
            for j in range(self.ny):
                for i in range(self.nx):
                    for v, (di, dj, dk) in enumerate(offs):
                        ref[c, v] = ((i + di) / self.nx,
                                     (j + dj) / self.ny,
                                     (k + dk) / self.nz)
                    c += 1
        return self.mapping(ref.reshape(-1, 3)).reshape(self.n_cells, 8, 3)

    def edge_midpoints(self) -> np.ndarray:
        """(nedges, 3) physical midpoints (via the reference mapping)."""
        ref = 0.5 * (self.ref_vertices[self.edges[:, 0]] +
                     self.ref_vertices[self.edges[:, 1]])
        if self.periodic_x:
            # wrap-around edges: the two endpoints straddle x=1
            x0 = self.ref_vertices[self.edges[:, 0], 0]
            x1 = self.ref_vertices[self.edges[:, 1], 0]
            wrap = np.abs(x0 - x1) > 0.5
            ref[wrap, 0] = ((x0[wrap] + x1[wrap] + 1.0) / 2.0) % 1.0
        return self.mapping(ref)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HexMesh({self.nx}x{self.ny}x{self.nz}, "
                f"periodic_x={self.periodic_x}, edges={self.n_edges})")
