"""The indefinite Maxwell problem (§V-B).

Assembles the weak form ``(∇×E, ∇×E') − Ω²(E, E') = (f, E')`` with
first-order Nédélec elements on a hexahedral mesh, using the paper's
tangential boundary data

``f(x) = (κ² − Ω²)(sin κx₂, sin κx₃, sin κx₁)``.

``F(x) = (sin κx₂, sin κx₃, sin κx₁)`` satisfies ``∇×∇×F = κ²F``, so the
problem has the exact solution ``E = F`` — handy for verification.  For
large Ω the operator ``K − Ω²M`` is highly indefinite, the regime that
forces a direct solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .mesh import HexMesh
from .nedelec import element_matrices, geometry_jacobians, reference_basis
from .quadrature import cube_rule, segment_rule

__all__ = ["MaxwellProblem", "assemble_curlcurl_mass", "field_F",
           "edge_dofs_of_field"]


def field_F(kappa: float, x: np.ndarray) -> np.ndarray:
    """The paper's field ``(sin κx₂, sin κx₃, sin κx₁)`` at points x."""
    x = np.atleast_2d(x)
    return np.stack([np.sin(kappa * x[:, 1]), np.sin(kappa * x[:, 2]),
                     np.sin(kappa * x[:, 0])], axis=1)


def assemble_curlcurl_mass(mesh: HexMesh, *, quad_order: int = 2
                           ) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Assemble the global curl-curl (K) and mass (M) matrices."""
    pts, wts = cube_rule(quad_order)
    K_e, M_e = element_matrices(mesh.cell_vertex_coords(),
                                quad_pts=pts, quad_wts=wts)
    ce = mesh.cell_edges
    rows = np.repeat(ce, 12, axis=1).ravel()
    cols = np.tile(ce, (1, 12)).ravel()
    n = mesh.n_edges
    K = sp.csr_matrix((K_e.ravel(), (rows, cols)), shape=(n, n))
    M = sp.csr_matrix((M_e.ravel(), (rows, cols)), shape=(n, n))
    K.sum_duplicates()
    M.sum_duplicates()
    return K, M


def edge_dofs_of_field(mesh: HexMesh, field, *, npts: int = 4) -> np.ndarray:
    """Line integrals ``∫_e field·dl`` along every (possibly curved) edge.

    ``field(points) -> (n, 3)`` evaluates the vector field at physical
    points.  Integration runs in reference space with the chain rule, so
    curved (mapped) edges are handled exactly up to quadrature order.
    """
    s, w = segment_rule(npts)
    v0 = mesh.ref_vertices[mesh.edges[:, 0]]
    v1 = mesh.ref_vertices[mesh.edges[:, 1]]
    if mesh.periodic_x:
        x0, x1 = v0[:, 0], v1[:, 0]
        wrap = np.abs(x0 - x1) > 0.5
        v1 = v1.copy()
        v1[wrap, 0] = x1[wrap] + 1.0  # unwrap across the seam
    dofs = np.zeros(mesh.n_edges)
    eps = 1e-6
    for sq, wq in zip(s, w):
        ref = v0 + sq * (v1 - v0)
        ref_x = ref.copy()
        # physical tangent dX/ds by central differences of the mapping
        step = eps * (v1 - v0)
        xp = mesh.mapping(np.mod(ref + 0.5 * step, [1.0, np.inf, np.inf])
                          if mesh.periodic_x else ref + 0.5 * step)
        xm = mesh.mapping(np.mod(ref - 0.5 * step, [1.0, np.inf, np.inf])
                          if mesh.periodic_x else ref - 0.5 * step)
        tangent = (xp - xm) / eps
        if mesh.periodic_x:
            ref_x[:, 0] = np.mod(ref[:, 0], 1.0)
        phys = mesh.mapping(ref_x)
        vals = field(phys)
        dofs += wq * np.einsum("ed,ed->e", vals, tangent)
    return dofs


@dataclass
class MaxwellProblem:
    """The assembled indefinite Maxwell system with tangential BCs.

    ``operator = K − Ω²M`` over all edges; the *reduced* system restricts
    to interior edges after eliminating the Dirichlet (tangential-trace)
    data on boundary edges.
    """

    mesh: HexMesh
    omega: float
    kappa: float
    K: sp.csr_matrix
    M: sp.csr_matrix
    operator: sp.csr_matrix
    interior: np.ndarray       # interior edge ids
    boundary: np.ndarray       # boundary edge ids
    g: np.ndarray              # Dirichlet dofs on boundary edges
    rhs_full: np.ndarray       # load vector over all edges

    @classmethod
    def build(cls, mesh: HexMesh, *, omega: float = 16.0,
              kappa: float | None = None, sigma: float = 0.0,
              quad_order: int = 2) -> "MaxwellProblem":
        """Assemble the paper's problem (Ω = 16, κ = Ω/1.05 defaults).

        ``sigma > 0`` adds a conductivity term ``+ iΩσ(E, E')``, the lossy
        medium variant: the operator becomes complex symmetric (the
        ``A ∈ C^{N×N}`` case of §III-A) while keeping the same sparsity
        pattern and indefinite character.
        """
        kappa = omega / 1.05 if kappa is None else kappa
        K, M = assemble_curlcurl_mass(mesh, quad_order=quad_order)
        A = (K - omega ** 2 * M).tocsr()
        if sigma != 0.0:
            A = (A + 1j * omega * sigma * M).tocsr()

        # load vector (f, E') with f = (κ²−Ω²) F
        pts, wts = cube_rule(quad_order)
        coords = mesh.cell_vertex_coords()
        J = geometry_jacobians(coords, pts)
        detJ = np.linalg.det(J)
        Jinv = np.linalg.inv(J)
        w_hat = reference_basis(pts)
        w_phys = np.einsum("cqrd,qer->cqed", Jinv, w_hat)
        # physical quadrature points via trilinear interpolation
        from .nedelec import _CORNERS, _lin
        shp = np.empty((pts.shape[0], 8))
        for v, (a, b, c) in enumerate(_CORNERS):
            shp[:, v] = _lin(a, pts[:, 0]) * _lin(b, pts[:, 1]) * \
                _lin(c, pts[:, 2])
        xq = np.einsum("qv,cvd->cqd", shp, coords)
        scale = kappa ** 2 - omega ** 2
        fq = scale * field_F(kappa, xq.reshape(-1, 3)).reshape(xq.shape)
        b_e = np.einsum("cqd,cqed,q,cq->ce", fq, w_phys, wts, detJ)
        rhs = np.zeros(mesh.n_edges)
        np.add.at(rhs, mesh.cell_edges.ravel(), b_e.ravel())

        bmask = mesh.boundary_edges
        boundary = np.nonzero(bmask)[0]
        interior = np.nonzero(~bmask)[0]
        g_all = edge_dofs_of_field(mesh,
                                   lambda x: field_F(kappa, x))
        return cls(mesh=mesh, omega=omega, kappa=kappa, K=K, M=M,
                   operator=A, interior=interior, boundary=boundary,
                   g=g_all[boundary], rhs_full=rhs)

    @property
    def n_dofs(self) -> int:
        return len(self.interior)

    def reduced_system(self) -> tuple[sp.csr_matrix, np.ndarray]:
        """(A_ii, b_i − A_ib·g): the linear system the solver factors."""
        A = self.operator
        a_ii = A[self.interior][:, self.interior].tocsr()
        a_ib = A[self.interior][:, self.boundary]
        b = self.rhs_full[self.interior] - a_ib @ self.g
        return a_ii, b

    def full_solution(self, x_interior: np.ndarray) -> np.ndarray:
        """Scatter interior solution + boundary data to all edges."""
        dtype = np.result_type(np.asarray(x_interior).dtype, self.g.dtype)
        out = np.empty(self.mesh.n_edges, dtype=dtype)
        out[self.interior] = x_interior
        out[self.boundary] = self.g
        return out

    def exact_dofs(self) -> np.ndarray:
        """Edge dofs of the exact solution E = F (verification)."""
        return edge_dofs_of_field(self.mesh,
                                  lambda x: field_F(self.kappa, x))

    def solution_error(self, x_interior: np.ndarray) -> float:
        """Relative L²(M)-norm error against the interpolated exact E."""
        xh = self.full_solution(x_interior)
        ex = self.exact_dofs()
        diff = xh - ex
        num = float(np.real(np.conj(diff) @ (self.M @ diff)))
        den = float(np.real(np.conj(ex) @ (self.M @ ex)))
        return np.sqrt(max(num, 0.0) / max(den, 1e-300))
