"""Lowest-order Nédélec (edge) elements on hexahedra.

The element family of the paper's application: first-order H(curl)
conforming edge elements (MFEM's ``ND_FECollection(1)``), implemented on
trilinearly-mapped hexahedra with the covariant Piola transform:

* value:   ``w = J⁻ᵀ ŵ``
* curl:    ``∇×w = (1/det J) · J · (∇̂×ŵ)``

Reference basis (unit cube, edge ordering of
:class:`~repro.fem.mesh.HexMesh`): the x-edge at transverse corner
``(y₀, z₀)`` carries ``ŵ = ℓ_{y₀}(y) ℓ_{z₀}(z) x̂`` with
``ℓ₀(t) = 1−t, ℓ₁(t) = t``; y- and z-edges by cyclic symmetry.  Each
basis function has unit line integral along its own edge and zero along
all others.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reference_basis", "reference_curl", "geometry_jacobians",
           "element_matrices", "TRANSVERSE_CORNERS"]

#: transverse corner (t1, t2) of each of the 4 edges in one direction
TRANSVERSE_CORNERS = np.array([(0, 0), (1, 0), (0, 1), (1, 1)],
                              dtype=np.float64)


def _lin(c: float, t: np.ndarray) -> np.ndarray:
    return 1.0 - t if c == 0.0 else t


def _dlin(c: float) -> float:
    return -1.0 if c == 0.0 else 1.0


def reference_basis(points: np.ndarray) -> np.ndarray:
    """Evaluate the 12 reference basis vectors: returns (nq, 12, 3)."""
    p = np.atleast_2d(points)
    nq = p.shape[0]
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    out = np.zeros((nq, 12, 3))
    for e, (a, b) in enumerate(TRANSVERSE_CORNERS):
        out[:, e, 0] = _lin(a, y) * _lin(b, z)        # x-edges
        out[:, 4 + e, 1] = _lin(a, x) * _lin(b, z)    # y-edges
        out[:, 8 + e, 2] = _lin(a, x) * _lin(b, y)    # z-edges
    return out


def reference_curl(points: np.ndarray) -> np.ndarray:
    """Evaluate the 12 reference curls: returns (nq, 12, 3).

    For ``ŵ = g(y,z)·x̂``: ``∇×ŵ = (0, ∂g/∂z, −∂g/∂y)``, and cyclically
    for the other directions.
    """
    p = np.atleast_2d(points)
    nq = p.shape[0]
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    out = np.zeros((nq, 12, 3))
    for e, (a, b) in enumerate(TRANSVERSE_CORNERS):
        # x-edge: g = l_a(y) l_b(z)
        out[:, e, 1] = _lin(a, y) * _dlin(b)
        out[:, e, 2] = -_dlin(a) * _lin(b, z)
        # y-edge: w = g(x,z) ŷ, curl = (−∂g/∂z, 0, ∂g/∂x)
        out[:, 4 + e, 0] = -_lin(a, x) * _dlin(b)
        out[:, 4 + e, 2] = _dlin(a) * _lin(b, z)
        # z-edge: w = g(x,y) ẑ, curl = (∂g/∂y, −∂g/∂x, 0)
        out[:, 8 + e, 0] = _lin(a, x) * _dlin(b)
        out[:, 8 + e, 1] = -_dlin(a) * _lin(b, y)
    return out


_CORNERS = np.array([(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0),
                     (0, 0, 1), (1, 0, 1), (0, 1, 1), (1, 1, 1)],
                    dtype=np.float64)


def _trilinear_gradients(points: np.ndarray) -> np.ndarray:
    """Gradients of the 8 trilinear geometry shape functions: (nq, 8, 3)."""
    p = np.atleast_2d(points)
    nq = p.shape[0]
    out = np.empty((nq, 8, 3))
    x, y, z = p[:, 0], p[:, 1], p[:, 2]
    for v, (a, b, c) in enumerate(_CORNERS):
        lx, ly, lz = _lin(a, x), _lin(b, y), _lin(c, z)
        out[:, v, 0] = _dlin(a) * ly * lz
        out[:, v, 1] = lx * _dlin(b) * lz
        out[:, v, 2] = lx * ly * _dlin(c)
    return out


def geometry_jacobians(cell_coords: np.ndarray,
                       points: np.ndarray) -> np.ndarray:
    """Jacobians ``J[c, q] = ∂X/∂ξ`` for trilinear cells: (nc, nq, 3, 3).

    ``cell_coords`` is (ncells, 8, 3) physical corner coordinates.
    """
    grads = _trilinear_gradients(points)          # (nq, 8, 3)
    # J[c,q,d,r] = sum_v coords[c,v,d] * grads[q,v,r]
    return np.einsum("cvd,qvr->cqdr", cell_coords, grads)


def element_matrices(cell_coords: np.ndarray, *,
                     quad_pts: np.ndarray, quad_wts: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Curl-curl and mass element matrices for a batch of cells.

    Returns ``(K, M)`` each of shape (ncells, 12, 12):

    * ``K[a,b] = ∫ (∇×w_a)·(∇×w_b) dX``
    * ``M[a,b] = ∫ w_a·w_b dX``
    """
    w_hat = reference_basis(quad_pts)             # (nq, 12, 3)
    c_hat = reference_curl(quad_pts)              # (nq, 12, 3)
    J = geometry_jacobians(cell_coords, quad_pts)  # (nc, nq, 3, 3)
    detJ = np.linalg.det(J)
    if np.any(detJ <= 0):
        raise ValueError("degenerate or inverted cell (det J <= 0)")
    Jinv = np.linalg.inv(J)                       # (nc, nq, 3, 3)

    # curl: (1/det) J c_hat ; value: J^{-T} w_hat
    Jc = np.einsum("cqdr,qer->cqed", J, c_hat)     # (nc, nq, 12, 3)
    JTw = np.einsum("cqrd,qer->cqed", Jinv, w_hat)  # J^{-T} w  (note index)

    wq = quad_wts[None, :]                        # (1, nq)
    K = np.einsum("cqad,cqbd,cq->cab", Jc, Jc, wq / detJ)
    M = np.einsum("cqad,cqbd,cq->cab", JTw, JTw, wq * detJ)
    return K, M
